// Package store implements the server-side raw-tuple database of the
// EnviroMeter architecture (Figure 1: the `raw_tuples` table). Sensed data
// arrives as a stream of raw tuples and is organized into the paper's time
// windows W_c = [cH, (c+1)H): all query processing — naive scans, index
// builds, and model-cover estimation — operates on one window at a time.
//
// The store keeps recent windows in memory and optionally persists every
// appended batch to checksummed segment files for crash recovery, giving
// the platform the durability a real deployment ingesting a month of bus
// data needs.
//
// # Segment hygiene
//
// A failed batch write can leave a torn (partial) frame at the tail of
// the open segment. The store never writes after a torn frame: on a write
// error it truncates the segment back to the last good frame boundary,
// and if even the truncate fails it abandons the segment and rotates to a
// fresh one. Recovery relies on this invariant — a corrupt frame always
// sits at a segment's tail, so replay keeps every frame before it and
// ignores the rest of that segment only.
//
// # Durability and sync policy
//
// Historically the store acknowledged a durable Append as soon as the
// frame reached the OS (write(2)); fsync happened only on Sync and Close,
// so a machine crash could lose every acknowledged batch since the last
// explicit Sync. That weak guarantee is now opt-in: Config.Sync selects
// when appends reach stable storage, and its zero value is SyncEveryBatch
// — an Append with Dir set does not return before its frame is fsynced.
// SyncGrouped amortizes the fsync across a commit group (concurrent
// appenders share one fsync, acknowledged only once the group is
// durable), and SyncNever restores the historical write-and-ack behavior.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tuple"
)

// SyncMode selects when durable appends are flushed to stable storage.
type SyncMode int

const (
	// SyncModeEveryBatch fsyncs the segment after every appended batch,
	// before the append is acknowledged. The default when Dir is set.
	SyncModeEveryBatch SyncMode = iota
	// SyncModeGrouped groups concurrent appends into commit groups: a
	// group is sealed after MaxBatches appends or MaxDelay, whichever
	// comes first, and one fsync covers the whole group. Every append in
	// the group is acknowledged only after that fsync returns.
	SyncModeGrouped
	// SyncModeNever issues no policy-driven fsyncs: appends are
	// acknowledged once written to the OS, and data reaches stable
	// storage only on Sync, Close, or at the kernel's leisure. This is
	// the store's historical (pre-sync-policy) behavior.
	SyncModeNever
)

// SyncPolicy configures when durable appends are flushed; build one with
// SyncEveryBatch, SyncGrouped, or SyncNever. The zero value is
// SyncEveryBatch().
type SyncPolicy struct {
	Mode SyncMode
	// MaxBatches seals a commit group at this many appends
	// (SyncModeGrouped; 0 = 32).
	MaxBatches int
	// MaxDelay seals a commit group at this age, bounding how long a
	// lone append waits for company (SyncModeGrouped; 0 = 2ms).
	MaxDelay time.Duration
}

// SyncEveryBatch returns the policy that fsyncs every appended batch
// before acknowledging it.
func SyncEveryBatch() SyncPolicy { return SyncPolicy{Mode: SyncModeEveryBatch} }

// SyncGrouped returns the group-commit policy: one fsync covers up to
// maxBatches appends or maxDelay of accumulation, whichever comes first
// (0 picks the defaults: 32 batches, 2ms).
func SyncGrouped(maxBatches int, maxDelay time.Duration) SyncPolicy {
	return SyncPolicy{Mode: SyncModeGrouped, MaxBatches: maxBatches, MaxDelay: maxDelay}
}

// SyncNever returns the policy that never fsyncs on append.
func SyncNever() SyncPolicy { return SyncPolicy{Mode: SyncModeNever} }

// DurabilityStats counts the store's durable writes and fsyncs — the
// observable effect of the sync policy (under SyncGrouped, Syncs stays
// well below Appends on a concurrent append burst).
type DurabilityStats struct {
	// Appends is the number of batches durably written to segments.
	Appends int64
	// Syncs is the number of fsyncs issued (policy-driven, manual Sync,
	// and the final sync in Close).
	Syncs int64
}

// Config configures a Store.
type Config struct {
	// WindowLength is H, in seconds of stream time. Must be positive.
	WindowLength float64
	// Retain bounds how many windows are kept in memory; older windows are
	// evicted. Zero means keep everything (the benchmark setting).
	Retain int
	// Dir, when non-empty, enables durability: every appended batch is
	// written to a segment file under Dir before being acknowledged.
	Dir string
	// Sync selects when durable appends reach stable storage. The zero
	// value is SyncEveryBatch(); see SyncGrouped and SyncNever. Ignored
	// when Dir is empty.
	Sync SyncPolicy
}

// Store is a windowed, optionally durable raw-tuple store. It is safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	cfg     Config
	windows map[int]tuple.Batch // window index c -> tuples in W_c
	total   int                 // tuples currently held
	maxTime float64             // largest timestamp ever appended

	seg    *os.File // open segment file, nil when durability is off
	segSeq int
	segOff int64 // end offset of the last intact frame in seg
	closed bool  // Close was called; durable appends must fail

	// group is the open commit group (SyncModeGrouped); appends join it
	// and block on its done channel until one fsync covers them all.
	// sealed holds groups detached from `group` (MaxBatches reached)
	// whose fsync has not completed yet — a failed rotation or Close
	// sync must poison these too, or their appends would be acked as
	// durable off a sync that never covered their frames.
	group   *commitGroup
	sealed  map[*commitGroup]bool
	appends atomic.Int64
	syncs   atomic.Int64

	// evictHooks run after windows are evicted, outside the store lock,
	// in registration order. Guarded by mu; keyed for unregistration.
	evictHooks map[int]func(evicted []int)
	nextHookID int

	// writeFrame persists one batch to the segment; swapped by tests to
	// inject torn writes. Defaults to tuple.WriteBinary.
	writeFrame func(w io.Writer, b tuple.Batch) error
	// syncSeg flushes the segment to stable storage; swapped by tests to
	// count or fail fsyncs. Defaults to (*os.File).Sync.
	syncSeg func(f *os.File) error
}

// commitGroup is one group-commit unit: the appends that share a single
// fsync. err is written once, before done closes. failErr (guarded by
// the store mutex) poisons the group when its segment could not be
// synced on a rotation or at Close — the closer propagates it instead
// of fsyncing whatever segment is current by then.
type commitGroup struct {
	once    sync.Once
	done    chan struct{}
	timer   *time.Timer
	n       int
	err     error
	failErr error
}

// Open creates a store. If cfg.Dir is non-empty, existing segment files in
// it are replayed (recovery) and a new segment is opened for appends.
func Open(cfg Config) (*Store, error) {
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("store: WindowLength = %v, want > 0", cfg.WindowLength)
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("store: Retain = %d, want ≥ 0", cfg.Retain)
	}
	switch cfg.Sync.Mode {
	case SyncModeEveryBatch, SyncModeGrouped, SyncModeNever:
	default:
		return nil, fmt.Errorf("store: unknown sync mode %d", cfg.Sync.Mode)
	}
	if cfg.Sync.Mode == SyncModeGrouped {
		if cfg.Sync.MaxBatches <= 0 {
			cfg.Sync.MaxBatches = 32
		}
		if cfg.Sync.MaxDelay <= 0 {
			cfg.Sync.MaxDelay = 2 * time.Millisecond
		}
	}
	s := &Store{
		cfg:        cfg,
		windows:    make(map[int]tuple.Batch),
		writeFrame: tuple.WriteBinary,
		syncSeg:    func(f *os.File) error { return f.Sync() },
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: create dir: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
		if err := s.openSegment(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustOpenMemory returns an in-memory store or panics; a convenience for
// tests and examples where the config is a known-good literal.
func MustOpenMemory(windowLength float64) *Store {
	s, err := Open(Config{WindowLength: windowLength})
	if err != nil {
		panic(err)
	}
	return s
}

// recover replays all segment files in cfg.Dir in sequence order. A
// trailing corrupt frame (torn write) ends that segment's replay: the
// write path guarantees nothing valid follows a torn frame within a
// segment (it truncates or rotates on write error), so the frames before
// it are kept and replay continues with the next segment.
func (s *Store) recover() error {
	names, err := segmentNames(s.cfg.Dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := s.replaySegment(filepath.Join(s.cfg.Dir, name)); err != nil {
			return err
		}
		// Re-apply the retention bound as we go: segments hold every
		// window ever appended, and a restarted store must come back no
		// larger than a running one — nor hold more than ~Retain windows
		// plus one segment's worth at any point during replay. No hooks
		// can be registered yet, so the evicted list needs no fan-out.
		s.evictLocked()
	}
	if len(names) > 0 {
		fmt.Sscanf(names[len(names)-1], "segment-%06d.emt", &s.segSeq)
		s.segSeq++
	}
	return nil
}

func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".emt" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (s *Store) replaySegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	var off int64 // start of the frame being read
	for {
		b, err := tuple.ReadBinary(f)
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, tuple.ErrCorrupt) {
			// A torn tail write (crash, or a rotated-away segment) is
			// legitimate: everything before it is intact and the write
			// discipline guarantees nothing was appended after it. An
			// intact frame AFTER the corruption cannot come from that
			// discipline — that is real damage (bitrot, external
			// writes), and silently dropping the acknowledged frames
			// behind it would be data loss, so fail loudly. Only this
			// rare path buffers the file to scan past the corruption —
			// and if the file cannot even be re-read, refuse to guess.
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return fmt.Errorf("store: segment %s: %w (could not verify torn tail: %v)", path, err, rerr)
			}
			if off+1 < int64(len(data)) && tuple.ContainsFrame(data[off+1:]) {
				return fmt.Errorf("store: segment %s: %w (intact frames follow the corruption; not a torn tail)", path, err)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: segment %s: %w", path, err)
		}
		s.addToWindows(b)
		off += int64(tuple.EncodedSize(len(b)))
	}
}

func (s *Store) openSegment() error {
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("segment-%06d.emt", s.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment for append: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment: %w", err)
	}
	s.seg = f
	s.segOff = info.Size()
	return nil
}

// Append validates and ingests a batch of raw tuples. With durability on,
// the batch is persisted before the in-memory state is updated and — per
// the sync policy — flushed to stable storage before Append returns; a
// batch that cannot be persisted is not ingested. Under SyncGrouped the
// final wait is shared: the append blocks until its commit group's single
// fsync covers it. A sync failure is returned to every append it covers
// (the in-memory state keeps the batch; only its durability is in doubt).
// Eviction hooks registered with OnEvict run after the append, outside
// the store lock.
func (s *Store) Append(b tuple.Batch) error {
	if len(b) == 0 {
		return nil
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var syncErr error
	var group *commitGroup
	var seal bool
	s.mu.Lock()
	if s.cfg.Dir != "" {
		if err := s.persistLocked(b); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.addToWindows(b)
	evicted := s.evictLocked()
	var hooks []func(evicted []int)
	if len(evicted) > 0 && len(s.evictHooks) > 0 {
		ids := make([]int, 0, len(s.evictHooks))
		for id := range s.evictHooks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		hooks = make([]func(evicted []int), len(ids))
		for i, id := range ids {
			hooks[i] = s.evictHooks[id]
		}
	}
	var everySeg *os.File
	if s.cfg.Dir != "" && s.seg != nil {
		switch s.cfg.Sync.Mode {
		case SyncModeEveryBatch:
			everySeg = s.seg
		case SyncModeGrouped:
			group, seal = s.joinGroupLocked()
		}
	}
	s.mu.Unlock()
	if everySeg != nil {
		// Fsync outside the lock: holding mu through an fsync would stall
		// every reader (the whole query path) per append. The frame is
		// already written; a concurrent rotation that closes this handle
		// surfaces here as a sync error — conservative, and the rotation
		// path itself syncs the abandoned segment first.
		syncErr = s.doSync(everySeg)
	}
	if group != nil {
		if seal {
			s.closeGroup(group)
		}
		<-group.done
		syncErr = group.err
	}
	for _, fn := range hooks {
		fn(evicted)
	}
	if syncErr != nil {
		return fmt.Errorf("store: sync: %w", syncErr)
	}
	return nil
}

// doSync flushes f to stable storage, counting the fsync.
func (s *Store) doSync(f *os.File) error {
	s.syncs.Add(1)
	return s.syncSeg(f)
}

// joinGroupLocked adds the calling append to the open commit group,
// opening one (with its MaxDelay timer) if none is pending. seal is true
// when this append filled the group to MaxBatches: the caller must then
// close the group itself, performing the group's fsync inline. Caller
// holds mu.
func (s *Store) joinGroupLocked() (g *commitGroup, seal bool) {
	if s.group == nil {
		g := &commitGroup{done: make(chan struct{})}
		g.timer = time.AfterFunc(s.cfg.Sync.MaxDelay, func() { s.closeGroup(g) })
		s.group = g
	}
	g = s.group
	g.n++
	if g.n >= s.cfg.Sync.MaxBatches {
		s.group = nil // later appends start a fresh group
		if s.sealed == nil {
			s.sealed = make(map[*commitGroup]bool)
		}
		s.sealed[g] = true // visible to poisoning until its fsync resolves
		return g, true
	}
	return g, false
}

// closeGroup seals g: detaches it from the store, issues the group's one
// fsync, and releases every append waiting on it. Called by the append
// that filled the group or by the group's MaxDelay timer — whichever
// fires first wins; the call is idempotent. A group poisoned by a failed
// rotation or Close sync (failErr) propagates that error instead of
// fsyncing whatever segment is current by now; a store closed in the
// meantime has already synced the group's frames under its lock.
func (s *Store) closeGroup(g *commitGroup) {
	g.once.Do(func() {
		// g.timer and g.failErr are written under mu; reading them under
		// mu orders this (possibly timer-goroutine) read after those
		// writes.
		s.mu.Lock()
		if s.group == g {
			s.group = nil
		}
		delete(s.sealed, g)
		seg := s.seg
		closed := s.closed
		timer := g.timer
		ferr := g.failErr
		s.mu.Unlock()
		if timer != nil {
			timer.Stop()
		}
		switch {
		case ferr != nil:
			g.err = ferr
		case seg != nil && !closed:
			g.err = s.doSync(seg)
		}
		close(g.done)
	})
}

// DurabilityStats returns the append/fsync counters.
func (s *Store) DurabilityStats() DurabilityStats {
	return DurabilityStats{Appends: s.appends.Load(), Syncs: s.syncs.Load()}
}

// persistLocked writes one batch frame to the open segment, maintaining
// the invariant that the segment never holds bytes after a torn frame: a
// failed write is rolled back by truncating to the last good frame
// boundary, and if the truncate fails too the segment is abandoned and a
// fresh one rotated in. Caller holds mu.
func (s *Store) persistLocked(b tuple.Batch) error {
	if s.closed {
		return errors.New("store: closed")
	}
	if s.seg == nil {
		// The previous rotation failed; retry so durability heals as
		// soon as the directory is writable again.
		if err := s.openSegment(); err != nil {
			return err
		}
	}
	if err := s.writeFrame(s.seg, b); err != nil {
		werr := fmt.Errorf("store: persist batch: %w", err)
		if terr := s.seg.Truncate(s.segOff); terr == nil {
			return werr
		}
		// Truncate failed: the torn frame stays, so this segment must
		// never be appended to again. Before abandoning it, sync it —
		// earlier intact frames may belong to an open commit group (or to
		// an every-batch append racing toward its fsync) and must not be
		// lost with the handle. If even that sync fails, poison the group
		// so its appends are NOT acknowledged as durable; its timer will
		// complete it with the error.
		if serr := s.doSync(s.seg); serr != nil {
			if g := s.group; g != nil {
				s.group = nil
				g.failErr = serr
			}
			for g := range s.sealed {
				if g.failErr == nil {
					g.failErr = serr
				}
			}
		}
		s.seg.Close()
		s.seg = nil
		s.segSeq++
		if oerr := s.openSegment(); oerr != nil {
			return errors.Join(werr, oerr)
		}
		return werr
	}
	s.segOff += int64(tuple.EncodedSize(len(b)))
	s.appends.Add(1)
	return nil
}

// OnEvict registers fn to run after windows are evicted by the retention
// bound. Hooks run outside the store lock, in registration order, with
// the evicted window indexes in ascending order. The cover maintainer
// uses this to keep its cache within the retention horizon. The returned
// function unregisters the hook — otherwise the store keeps (and keeps
// invoking) it for its whole lifetime.
func (s *Store) OnEvict(fn func(evicted []int)) (unregister func()) {
	s.mu.Lock()
	if s.evictHooks == nil {
		s.evictHooks = make(map[int]func(evicted []int))
	}
	id := s.nextHookID
	s.nextHookID++
	s.evictHooks[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.evictHooks, id)
		s.mu.Unlock()
	}
}

// Retain returns the store's retention bound (0 = unbounded).
func (s *Store) Retain() int { return s.cfg.Retain }

// addToWindows distributes tuples into their windows. Caller holds mu (or
// is single-threaded recovery).
func (s *Store) addToWindows(b tuple.Batch) {
	for _, r := range b {
		c := tuple.WindowIndex(r.T, s.cfg.WindowLength)
		s.windows[c] = append(s.windows[c], r)
		s.total++
		if r.T > s.maxTime {
			s.maxTime = r.T
		}
	}
}

// evictLocked drops the oldest windows beyond the retention bound and
// returns their indexes in ascending order (nil when nothing is evicted).
func (s *Store) evictLocked() []int {
	if s.cfg.Retain == 0 || len(s.windows) <= s.cfg.Retain {
		return nil
	}
	idxs := make([]int, 0, len(s.windows))
	for c := range s.windows {
		idxs = append(idxs, c)
	}
	sort.Ints(idxs)
	evicted := idxs[:len(idxs)-s.cfg.Retain]
	for _, c := range evicted {
		s.total -= len(s.windows[c])
		delete(s.windows, c)
	}
	return evicted
}

// Window returns a copy of the tuples in window W_c, sorted by time.
func (s *Store) Window(c int) tuple.Batch {
	s.mu.RLock()
	b := s.windows[c].Clone()
	s.mu.RUnlock()
	b.SortByTime()
	return b
}

// WindowLen returns the number of tuples in window W_c without copying
// it — the cheap emptiness/size probe for query planning.
func (s *Store) WindowLen(c int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.windows[c])
}

// WindowAt returns the window containing stream time t, along with its
// index.
func (s *Store) WindowAt(t float64) (tuple.Batch, int) {
	c := tuple.WindowIndex(t, s.cfg.WindowLength)
	return s.Window(c), c
}

// LatestWindowIndex returns the index of the newest non-empty window.
// ok is false when the store is empty.
func (s *Store) LatestWindowIndex() (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.windows) == 0 {
		return 0, false
	}
	best := 0
	first := true
	for c := range s.windows {
		if first || c > best {
			best, first = c, false
		}
	}
	return best, true
}

// WindowIndexes returns the indexes of all retained windows in ascending
// order.
func (s *Store) WindowIndexes() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := make([]int, 0, len(s.windows))
	for c := range s.windows {
		idxs = append(idxs, c)
	}
	sort.Ints(idxs)
	return idxs
}

// Len returns the total number of retained tuples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// MaxTime returns the largest timestamp ever appended (0 for an empty
// store).
func (s *Store) MaxTime() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxTime
}

// WindowLength returns H.
func (s *Store) WindowLength() float64 { return s.cfg.WindowLength }

// Sync flushes the open segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	return s.doSync(s.seg)
}

// Close syncs and closes the segment file. A pending commit group is
// released once the final sync has covered its frames. The in-memory
// state remains readable but further Appends with durability will fail.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	group := s.group
	s.group = nil
	var err error
	if s.seg != nil {
		// Sync under the lock: a concurrently-firing group timer must not
		// release the group's waiters before this sync has covered them.
		if err = s.doSync(s.seg); err != nil {
			s.seg.Close()
		} else {
			err = s.seg.Close()
		}
		s.seg = nil
	}
	if group != nil {
		// Hand the group this sync's outcome under mu: whichever of
		// Close and the group's timer wins the once reads it there, so a
		// failed final sync can never be acknowledged as durable.
		group.failErr = err
	}
	if err != nil {
		// Sealed groups awaiting their fsync are covered by this failed
		// sync too; their sealers must not ack them as durable.
		for g := range s.sealed {
			if g.failErr == nil {
				g.failErr = err
			}
		}
	}
	s.mu.Unlock()
	if group != nil {
		s.closeGroup(group)
	}
	return err
}
