package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

// TestWindowsPartitionData: for random batches, the union of all windows
// equals exactly what was appended — no tuple lost, duplicated, or
// misfiled.
func TestWindowsPartitionData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Float64()*500
		s, err := Open(Config{WindowLength: h})
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(500)
		appended := make(map[tuple.Raw]int, n)
		var batch tuple.Batch
		for i := 0; i < n; i++ {
			r := tuple.Raw{
				T: rng.Float64() * 10000,
				X: rng.Float64() * 100,
				Y: rng.Float64() * 100,
				S: rng.Float64() * 1000,
			}
			appended[r]++
			batch = append(batch, r)
			// Split the stream into several Append calls.
			if rng.Intn(10) == 0 {
				if err := s.Append(batch); err != nil {
					return false
				}
				batch = nil
			}
		}
		if err := s.Append(batch); err != nil {
			return false
		}
		if s.Len() != n {
			return false
		}
		seen := make(map[tuple.Raw]int, n)
		for _, c := range s.WindowIndexes() {
			for _, r := range s.Window(c) {
				if tuple.WindowIndex(r.T, h) != c {
					return false // misfiled
				}
				seen[r]++
			}
		}
		if len(seen) != len(appended) {
			return false
		}
		for r, count := range appended {
			if seen[r] != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDurabilityPreservesEverything: random append schedules survive a
// close/reopen cycle byte for byte.
func TestDurabilityPreservesEverything(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		s, err := Open(Config{WindowLength: 100, Dir: dir})
		if err != nil {
			return false
		}
		total := 0
		for b := 0; b < 1+rng.Intn(5); b++ {
			batch := make(tuple.Batch, 1+rng.Intn(50))
			for i := range batch {
				batch[i] = tuple.Raw{T: rng.Float64() * 1000, S: rng.Float64() * 100}
			}
			if err := s.Append(batch); err != nil {
				return false
			}
			total += len(batch)
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := Open(Config{WindowLength: 100, Dir: dir})
		if err != nil {
			return false
		}
		defer s2.Close()
		return s2.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
