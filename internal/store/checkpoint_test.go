package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/tuple"
)

// collectTuples flattens every retained window into one multiset keyed
// by the raw tuple value.
func collectTuples(s *Store) map[tuple.Raw]int {
	out := make(map[tuple.Raw]int)
	for _, c := range s.WindowIndexes() {
		for _, r := range s.Window(c) {
			out[r]++
		}
	}
	return out
}

func sameTuples(t *testing.T, got, want map[tuple.Raw]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("distinct tuples: got %d, want %d", len(got), len(want))
	}
	for r, n := range want {
		if got[r] != n {
			t.Fatalf("tuple %v: got %d copies, want %d", r, got[r], n)
		}
	}
}

func TestCheckpointRecoversWithSuffixReplayOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(10, 20, 150)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(250)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint appends land in the rotated segment and must
	// replay on top of the checkpoint.
	if err := s.Append(mkBatch(260, 350)); err != nil {
		t.Fatal(err)
	}
	want := collectTuples(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameTuples(t, collectTuples(s2), want)
	rs := s2.RecoveryStats()
	if !rs.FromCheckpoint {
		t.Fatal("recovery ignored the checkpoint")
	}
	if rs.CheckpointSeq != 0 {
		t.Errorf("CheckpointSeq = %d, want 0", rs.CheckpointSeq)
	}
	if rs.CheckpointTuples != 4 {
		t.Errorf("CheckpointTuples = %d, want 4", rs.CheckpointTuples)
	}
	if rs.SegmentsReplayed != 1 || rs.TuplesReplayed != 2 {
		t.Errorf("replayed %d segments / %d tuples, want exactly the post-checkpoint suffix (1 / 2)",
			rs.SegmentsReplayed, rs.TuplesReplayed)
	}
	if rs.CorruptCheckpoints != 0 {
		t.Errorf("CorruptCheckpoints = %d, want 0", rs.CorruptCheckpoints)
	}
	// The recovered checkpoint is the newest committed one; its
	// counters must survive the restart.
	if st := s2.CheckpointStats(); st.LastSeq != 0 || st.LastTuples != 4 {
		t.Errorf("restored checkpoint counters = %+v, want LastSeq 0, LastTuples 4", st)
	}
}

func TestCheckpointBoundsOnDiskSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir, Retain: 4, KeepSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Append(mkBatch(float64(i*100+10), float64(i*100+20))); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		names, err := segmentNames(dir)
		if err != nil {
			t.Fatal(err)
		}
		// One kept covered segment plus the freshly rotated open one.
		if len(names) > 2 {
			t.Fatalf("round %d: %d segments on disk (%v), want ≤ 2", i, len(names), names)
		}
		seqs, err := checkpointSeqs(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqs) != 1 || seqs[0] != i {
			t.Fatalf("round %d: checkpoint files %v, want exactly [%d]", i, seqs, i)
		}
	}
	st := s.CheckpointStats()
	if st.Checkpoints != 8 || st.Failures != 0 {
		t.Errorf("CheckpointStats = %+v, want 8 checkpoints, 0 failures", st)
	}
	if st.SegmentsDeleted == 0 {
		t.Error("compaction deleted no segments")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Errorf("MANIFEST missing: %v", err)
	}
}

func TestCheckpointMemoryStoreIsNoop(t *testing.T) {
	s := MustOpenMemory(100)
	if err := s.Append(mkBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Errorf("memory-store checkpoint: %v", err)
	}
	if st := s.CheckpointStats(); st.Checkpoints != 0 {
		t.Errorf("memory store counted a checkpoint: %+v", st)
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Errorf("Len = %d, want 0", s2.Len())
	}
	if !s2.RecoveryStats().FromCheckpoint {
		t.Error("empty checkpoint should still be used")
	}
}

func TestCheckpointAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err == nil {
		t.Error("checkpoint after Close must fail")
	}
}

func TestRecoverFallsBackToFullReplayOnCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// KeepSegments large enough that compaction spares every covered
	// segment: the fallback then loses nothing.
	s, err := Open(Config{WindowLength: 100, Dir: dir, KeepSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(10, 20, 150)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(250)); err != nil {
		t.Fatal(err)
	}
	want := collectTuples(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, checkpointName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the payload tail
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{WindowLength: 100, Dir: dir, KeepSegments: 100})
	if err != nil {
		t.Fatalf("recovery must fall back on a corrupt checkpoint: %v", err)
	}
	defer s2.Close()
	sameTuples(t, collectTuples(s2), want)
	rs := s2.RecoveryStats()
	if rs.FromCheckpoint {
		t.Error("corrupt checkpoint was trusted")
	}
	if rs.CorruptCheckpoints != 1 {
		t.Errorf("CorruptCheckpoints = %d, want 1", rs.CorruptCheckpoints)
	}
	if rs.SegmentsReplayed != 2 {
		t.Errorf("SegmentsReplayed = %d, want 2 (full replay)", rs.SegmentsReplayed)
	}
}

func TestRecoverFallsBackToOlderValidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir, KeepSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Keep superseded checkpoints on disk so an older candidate exists.
	realRemove := s.removeFile
	s.removeFile = func(path string) error {
		if _, ok := parseSeq(filepath.Base(path), "checkpoint-"); ok {
			return nil
		}
		return realRemove(path)
	}
	if err := s.Append(mkBatch(10, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // checkpoint 0
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(150)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // checkpoint 1
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(250)); err != nil {
		t.Fatal(err)
	}
	want := collectTuples(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest (manifest-committed) checkpoint; recovery must
	// fall back to checkpoint 0 and replay everything after ITS horizon.
	path := filepath.Join(dir, checkpointName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8] ^= 0xFF // corrupt the header
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{WindowLength: 100, Dir: dir, KeepSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameTuples(t, collectTuples(s2), want)
	rs := s2.RecoveryStats()
	if !rs.FromCheckpoint || rs.CheckpointSeq != 0 {
		t.Errorf("recovery = %+v, want fallback to checkpoint 0", rs)
	}
	if rs.CorruptCheckpoints != 1 {
		t.Errorf("CorruptCheckpoints = %d, want 1", rs.CorruptCheckpoints)
	}
	// New checkpoints must number past the corrupt one, never reuse it.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s2.CheckpointStats(); st.LastSeq != 2 {
		t.Errorf("next checkpoint seq = %d, want 2", st.LastSeq)
	}
}

func TestRecoverHealsManifestForOrphanCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(10, 150)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(250)); err != nil {
		t.Fatal(err)
	}
	want := collectTuples(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash scenario: the checkpoint file was renamed into place but
	// the MANIFEST commit was lost.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.RecoveryStats().FromCheckpoint {
		t.Fatal("orphan checkpoint not used")
	}
	sameTuples(t, collectTuples(s2), want)
	// Recovery must have re-committed the checkpoint it used, so the
	// next restart agrees with this one even after compaction.
	if seq, _, err := readManifest(dir); err != nil || seq != 0 {
		t.Fatalf("manifest not healed: seq=%d err=%v", seq, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	sameTuples(t, collectTuples(s3), want)
	if rs := s3.RecoveryStats(); !rs.FromCheckpoint || rs.CorruptCheckpoints != 0 {
		t.Errorf("second restart recovery = %+v", rs)
	}
}

func TestRecoverDeletesRetentionDeadSegments(t *testing.T) {
	dir := t.TempDir()
	// Build six single-window segments via reopen cycles (each Open
	// starts a fresh segment) — no checkpoints involved.
	for c := 0; c < 6; c++ {
		s, err := Open(Config{WindowLength: 100, Dir: dir, Retain: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(mkBatch(float64(c*100 + 50))); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(Config{WindowLength: 100, Dir: dir, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.WindowIndexes(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("retained windows = %v, want [4 5]", got)
	}
	if rs := s.RecoveryStats(); rs.SegmentsDeleted == 0 {
		t.Errorf("retention-dead segments not reclaimed: %+v", rs)
	}
	// The survivors must still cover the retained windows on yet
	// another restart.
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if seq, _ := parseSeq(name, "segment-"); seq < 4 {
			// Segments 0..3 hold only windows 0..3 — all dead. (Empty
			// reopen segments may persist; they hold no data.)
			f, err := os.Stat(filepath.Join(dir, name))
			if err == nil && f.Size() > 0 {
				t.Errorf("dead segment %s (size %d) survived", name, f.Size())
			}
		}
	}
	s.Close()
	s2, err := Open(Config{WindowLength: 100, Dir: dir, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.WindowIndexes(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("second restart windows = %v, want [4 5]", got)
	}
}

func TestCheckpointConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir, Sync: SyncGrouped(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				b := tuple.Batch{{T: float64(w*1000 + i), S: 400}}
				if err := s.Append(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := collectTuples(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameTuples(t, collectTuples(s2), want)
	if s2.Len() != writers*perWriter {
		t.Errorf("recovered Len = %d, want %d", s2.Len(), writers*perWriter)
	}
}
