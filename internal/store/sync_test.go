package store

import (
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/tuple"
)

func syncBatch(c int, h float64, n int) tuple.Batch {
	b := make(tuple.Batch, n)
	for i := range b {
		b[i] = tuple.Raw{T: float64(c)*h + float64(i), X: float64(i), Y: 1, S: 400}
	}
	return b
}

// TestSyncEveryBatchIsDefault checks the satellite fix: a durable store
// with a zero Sync policy fsyncs every append before acknowledging it.
func TestSyncEveryBatchIsDefault(t *testing.T) {
	s, err := Open(Config{WindowLength: 100, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for c := 0; c < 5; c++ {
		if err := s.Append(syncBatch(c, 100, 3)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.DurabilityStats()
	if st.Appends != 5 || st.Syncs != 5 {
		t.Fatalf("DurabilityStats = %+v, want 5 appends and 5 syncs", st)
	}
}

// TestSyncNeverIssuesNoAppendSyncs checks the historical weak guarantee
// is still available, explicitly.
func TestSyncNeverIssuesNoAppendSyncs(t *testing.T) {
	s, err := Open(Config{WindowLength: 100, Dir: t.TempDir(), Sync: SyncNever()})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 5; c++ {
		if err := s.Append(syncBatch(c, 100, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.DurabilityStats(); st.Syncs != 0 {
		t.Fatalf("DurabilityStats = %+v, want 0 syncs before Close", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.DurabilityStats(); st.Syncs != 1 {
		t.Fatalf("DurabilityStats = %+v, want exactly the Close sync", st)
	}
}

// TestGroupedCommitSharesSyncs drives a concurrent append burst through
// the group-commit policy and asserts — via the fsync counting hook —
// that one sync covered many appends, while every append still reached a
// recoverable segment.
func TestGroupedCommitSharesSyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{
		WindowLength: 100,
		Dir:          dir,
		Sync:         SyncGrouped(8, 50*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, appendsEach = 16, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < appendsEach; i++ {
				if err := s.Append(syncBatch(w*appendsEach+i, 100, 2)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.DurabilityStats()
	if st.Appends != writers*appendsEach {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*appendsEach)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("grouped commit did not group: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acknowledged must come back on recovery.
	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Len(), writers*appendsEach*2; got != want {
		t.Fatalf("recovered %d tuples, want %d", got, want)
	}
}

// TestGroupedCommitLoneAppendAcksByTimer checks a lone append is not
// stuck waiting for company: the MaxDelay timer seals its group.
func TestGroupedCommitLoneAppendAcksByTimer(t *testing.T) {
	s, err := Open(Config{
		WindowLength: 100,
		Dir:          t.TempDir(),
		Sync:         SyncGrouped(1024, 5*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	if err := s.Append(syncBatch(0, 100, 2)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone grouped append took %v", elapsed)
	}
	if st := s.DurabilityStats(); st.Syncs != 1 {
		t.Fatalf("DurabilityStats = %+v, want 1 sync", st)
	}
}

// TestGroupedCommitSyncErrorReachesEveryWaiter injects an fsync failure
// and checks it is reported to the append that waited on the group.
func TestGroupedCommitSyncErrorReachesEveryWaiter(t *testing.T) {
	s, err := Open(Config{
		WindowLength: 100,
		Dir:          t.TempDir(),
		Sync:         SyncGrouped(1, time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.syncSeg = func(*os.File) error { return os.ErrInvalid }
	if err := s.Append(syncBatch(0, 100, 2)); err == nil {
		t.Fatal("append acked despite failed group sync")
	}
}

// TestSyncRejectsUnknownMode guards the config validation.
func TestSyncRejectsUnknownMode(t *testing.T) {
	_, err := Open(Config{WindowLength: 100, Sync: SyncPolicy{Mode: SyncMode(42)}})
	if err == nil {
		t.Fatal("Open accepted an unknown sync mode")
	}
}
