package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/tuple"
)

func mkBatch(ts ...float64) tuple.Batch {
	b := make(tuple.Batch, len(ts))
	for i, t := range ts {
		b[i] = tuple.Raw{T: t, X: float64(i), Y: float64(i), S: 400 + t}
	}
	return b
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{WindowLength: 0}); err == nil {
		t.Error("expected error for zero window length")
	}
	if _, err := Open(Config{WindowLength: -5}); err == nil {
		t.Error("expected error for negative window length")
	}
	if _, err := Open(Config{WindowLength: 10, Retain: -1}); err == nil {
		t.Error("expected error for negative retain")
	}
}

func TestAppendAndWindowing(t *testing.T) {
	s := MustOpenMemory(100)
	if err := s.Append(mkBatch(0, 50, 99.9, 100, 150, 250)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	if got := len(s.Window(0)); got != 3 {
		t.Errorf("window 0 has %d tuples, want 3", got)
	}
	if got := len(s.Window(1)); got != 2 {
		t.Errorf("window 1 has %d tuples, want 2", got)
	}
	if got := len(s.Window(2)); got != 1 {
		t.Errorf("window 2 has %d tuples, want 1", got)
	}
	if got := len(s.Window(99)); got != 0 {
		t.Errorf("missing window has %d tuples, want 0", got)
	}
	latest, ok := s.LatestWindowIndex()
	if !ok || latest != 2 {
		t.Errorf("LatestWindowIndex = %d,%v want 2,true", latest, ok)
	}
	if got := s.WindowIndexes(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("WindowIndexes = %v", got)
	}
	if s.MaxTime() != 250 {
		t.Errorf("MaxTime = %v, want 250", s.MaxTime())
	}
}

func TestWindowReturnsSortedCopy(t *testing.T) {
	s := MustOpenMemory(100)
	if err := s.Append(mkBatch(50, 10, 30)); err != nil {
		t.Fatal(err)
	}
	w := s.Window(0)
	if !w.SortedByTime() {
		t.Error("window not sorted by time")
	}
	w[0].S = -999
	if s.Window(0)[0].S == -999 {
		t.Error("Window must return a copy")
	}
}

func TestWindowAt(t *testing.T) {
	s := MustOpenMemory(60)
	if err := s.Append(mkBatch(10, 70, 130)); err != nil {
		t.Fatal(err)
	}
	b, c := s.WindowAt(65)
	if c != 1 || len(b) != 1 || b[0].T != 70 {
		t.Errorf("WindowAt(65) = (%v, %d)", b, c)
	}
}

func TestAppendValidates(t *testing.T) {
	s := MustOpenMemory(100)
	bad := tuple.Batch{{T: -1}}
	if err := s.Append(bad); err == nil {
		t.Error("expected validation error")
	}
	if s.Len() != 0 {
		t.Error("failed append must not change state")
	}
	if err := s.Append(nil); err != nil {
		t.Errorf("empty append should be a no-op, got %v", err)
	}
}

func TestRetentionEviction(t *testing.T) {
	s, err := Open(Config{WindowLength: 10, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(5, 15, 25, 35)); err != nil { // windows 0..3
		t.Fatal(err)
	}
	if got := s.WindowIndexes(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("retained windows = %v, want [2 3]", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if len(s.Window(0)) != 0 {
		t.Error("evicted window still readable")
	}
}

func TestEmptyStore(t *testing.T) {
	s := MustOpenMemory(10)
	if _, ok := s.LatestWindowIndex(); ok {
		t.Error("empty store should have no latest window")
	}
	if s.MaxTime() != 0 {
		t.Error("empty MaxTime should be 0")
	}
	if s.Len() != 0 {
		t.Error("empty Len should be 0")
	}
}

func TestDurabilityAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1, 2, 150)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(250)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all tuples must come back.
	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 4 {
		t.Fatalf("recovered Len = %d, want 4", s2.Len())
	}
	if got := len(s2.Window(0)); got != 2 {
		t.Errorf("recovered window 0 = %d tuples, want 2", got)
	}
	if s2.MaxTime() != 250 {
		t.Errorf("recovered MaxTime = %v, want 250", s2.MaxTime())
	}
	// New appends go to a fresh segment.
	if err := s2.Append(mkBatch(300)); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Errorf("segments = %v, want 2 files", names)
	}
}

func TestRecoveryToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage to the segment.
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x45, 0x4d, 0x54}); err != nil { // partial magic
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatalf("recovery should tolerate torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("recovered Len = %d, want 3", s2.Len())
	}
}

func TestRecoveryRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt the FIRST segment, then create a second one so the corrupt
	// file is not the tail.
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "segment-999999.emt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{WindowLength: 100, Dir: dir}); err == nil {
		t.Error("expected error for mid-stream corruption")
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s := MustOpenMemory(50)
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				b := tuple.Batch{{T: rng.Float64() * 1000, S: 400}}
				if err := s.Append(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Len()
				_, _ = s.LatestWindowIndex()
				_ = s.Window(i % 20)
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	// Every tuple landed in its correct window.
	total := 0
	for _, c := range s.WindowIndexes() {
		w := s.Window(c)
		total += len(w)
		for _, r := range w {
			if tuple.WindowIndex(r.T, 50) != c {
				t.Fatalf("tuple %v in wrong window %d", r, c)
			}
		}
	}
	if total != writers*perWriter {
		t.Errorf("window sum = %d, want %d", total, writers*perWriter)
	}
}

func TestCloseIdempotentWithoutDurability(t *testing.T) {
	s := MustOpenMemory(10)
	if err := s.Close(); err != nil {
		t.Errorf("Close on memory store: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync on memory store: %v", err)
	}
}
