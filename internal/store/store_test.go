package store

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/tuple"
)

func mkBatch(ts ...float64) tuple.Batch {
	b := make(tuple.Batch, len(ts))
	for i, t := range ts {
		b[i] = tuple.Raw{T: t, X: float64(i), Y: float64(i), S: 400 + t}
	}
	return b
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{WindowLength: 0}); err == nil {
		t.Error("expected error for zero window length")
	}
	if _, err := Open(Config{WindowLength: -5}); err == nil {
		t.Error("expected error for negative window length")
	}
	if _, err := Open(Config{WindowLength: 10, Retain: -1}); err == nil {
		t.Error("expected error for negative retain")
	}
}

func TestAppendAndWindowing(t *testing.T) {
	s := MustOpenMemory(100)
	if err := s.Append(mkBatch(0, 50, 99.9, 100, 150, 250)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	if got := len(s.Window(0)); got != 3 {
		t.Errorf("window 0 has %d tuples, want 3", got)
	}
	if got := len(s.Window(1)); got != 2 {
		t.Errorf("window 1 has %d tuples, want 2", got)
	}
	if got := len(s.Window(2)); got != 1 {
		t.Errorf("window 2 has %d tuples, want 1", got)
	}
	if got := len(s.Window(99)); got != 0 {
		t.Errorf("missing window has %d tuples, want 0", got)
	}
	latest, ok := s.LatestWindowIndex()
	if !ok || latest != 2 {
		t.Errorf("LatestWindowIndex = %d,%v want 2,true", latest, ok)
	}
	if got := s.WindowIndexes(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("WindowIndexes = %v", got)
	}
	if s.MaxTime() != 250 {
		t.Errorf("MaxTime = %v, want 250", s.MaxTime())
	}
}

func TestWindowReturnsSortedCopy(t *testing.T) {
	s := MustOpenMemory(100)
	if err := s.Append(mkBatch(50, 10, 30)); err != nil {
		t.Fatal(err)
	}
	w := s.Window(0)
	if !w.SortedByTime() {
		t.Error("window not sorted by time")
	}
	w[0].S = -999
	if s.Window(0)[0].S == -999 {
		t.Error("Window must return a copy")
	}
}

func TestWindowAt(t *testing.T) {
	s := MustOpenMemory(60)
	if err := s.Append(mkBatch(10, 70, 130)); err != nil {
		t.Fatal(err)
	}
	b, c := s.WindowAt(65)
	if c != 1 || len(b) != 1 || b[0].T != 70 {
		t.Errorf("WindowAt(65) = (%v, %d)", b, c)
	}
}

func TestAppendValidates(t *testing.T) {
	s := MustOpenMemory(100)
	bad := tuple.Batch{{T: -1}}
	if err := s.Append(bad); err == nil {
		t.Error("expected validation error")
	}
	if s.Len() != 0 {
		t.Error("failed append must not change state")
	}
	if err := s.Append(nil); err != nil {
		t.Errorf("empty append should be a no-op, got %v", err)
	}
}

func TestRetentionEviction(t *testing.T) {
	s, err := Open(Config{WindowLength: 10, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(5, 15, 25, 35)); err != nil { // windows 0..3
		t.Fatal(err)
	}
	if got := s.WindowIndexes(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("retained windows = %v, want [2 3]", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if len(s.Window(0)) != 0 {
		t.Error("evicted window still readable")
	}
}

func TestEmptyStore(t *testing.T) {
	s := MustOpenMemory(10)
	if _, ok := s.LatestWindowIndex(); ok {
		t.Error("empty store should have no latest window")
	}
	if s.MaxTime() != 0 {
		t.Error("empty MaxTime should be 0")
	}
	if s.Len() != 0 {
		t.Error("empty Len should be 0")
	}
}

func TestDurabilityAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1, 2, 150)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(250)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all tuples must come back.
	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 4 {
		t.Fatalf("recovered Len = %d, want 4", s2.Len())
	}
	if got := len(s2.Window(0)); got != 2 {
		t.Errorf("recovered window 0 = %d tuples, want 2", got)
	}
	if s2.MaxTime() != 250 {
		t.Errorf("recovered MaxTime = %v, want 250", s2.MaxTime())
	}
	// New appends go to a fresh segment.
	if err := s2.Append(mkBatch(300)); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Errorf("segments = %v, want 2 files", names)
	}
}

func TestRecoveryToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage to the segment.
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x45, 0x4d, 0x54}); err != nil { // partial magic
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatalf("recovery should tolerate torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("recovered Len = %d, want 3", s2.Len())
	}
}

func TestRecoveryToleratesTornTailInEarlierSegment(t *testing.T) {
	// The write path never appends after a torn frame (it truncates or
	// rotates), so a corrupt frame is always at a segment's tail — even
	// in a non-last segment left behind by a rotation. Recovery keeps the
	// frames before it and replays the remaining segments normally.
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Tear the tail of the FIRST segment (corrupting the second frame),
	// then add a later segment holding one more acked batch, as a
	// rotation would have.
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame1 := tuple.EncodedSize(len(mkBatch(1)))
	data[frame1+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	next, err := os.Create(filepath.Join(dir, "segment-999999.emt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tuple.WriteBinary(next, mkBatch(3)); err != nil {
		t.Fatal(err)
	}
	next.Close()

	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatalf("recovery should tolerate a torn segment tail: %v", err)
	}
	defer s2.Close()
	// Batches 1 and 3 survive; the torn batch 2 is lost with the tail.
	want := len(mkBatch(1)) + len(mkBatch(3))
	if s2.Len() != want {
		t.Errorf("recovered Len = %d, want %d", s2.Len(), want)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s := MustOpenMemory(50)
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				b := tuple.Batch{{T: rng.Float64() * 1000, S: 400}}
				if err := s.Append(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Len()
				_, _ = s.LatestWindowIndex()
				_ = s.Window(i % 20)
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	// Every tuple landed in its correct window.
	total := 0
	for _, c := range s.WindowIndexes() {
		w := s.Window(c)
		total += len(w)
		for _, r := range w {
			if tuple.WindowIndex(r.T, 50) != c {
				t.Fatalf("tuple %v in wrong window %d", r, c)
			}
		}
	}
	if total != writers*perWriter {
		t.Errorf("window sum = %d, want %d", total, writers*perWriter)
	}
}

func TestCloseIdempotentWithoutDurability(t *testing.T) {
	s := MustOpenMemory(10)
	if err := s.Close(); err != nil {
		t.Errorf("Close on memory store: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync on memory store: %v", err)
	}
}

// failPartialWrite simulates a torn write: it emits a prefix of garbage
// bytes to the segment, then fails, leaving a partial frame behind.
func failPartialWrite(w io.Writer, b tuple.Batch) error {
	w.Write([]byte{0x45, 0x4d, 0x54, 0x31, 0xde, 0xad}) // magic + junk
	return errors.New("disk full")
}

func TestFailedAppendTruncatesTornFrame(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1)); err != nil {
		t.Fatal(err)
	}
	s.writeFrame = failPartialWrite
	if err := s.Append(mkBatch(2)); err == nil {
		t.Fatal("append with failing write must error")
	}
	if s.Len() != 1 {
		t.Errorf("failed append must not be ingested: Len = %d, want 1", s.Len())
	}
	// The torn bytes must be gone: later appends land after the last good
	// frame and the whole log replays.
	s.writeFrame = tuple.WriteBinary
	if err := s.Append(mkBatch(3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatalf("recovery after failed append: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("recovered Len = %d, want 3 (batches 1 and 3)", s2.Len())
	}
}

func TestFailedAppendRotatesWhenTruncateFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1)); err != nil {
		t.Fatal(err)
	}
	// Tear the write AND close the segment under the store's feet, so the
	// truncate rollback fails and the store must rotate.
	s.writeFrame = func(w io.Writer, b tuple.Batch) error {
		w.Write([]byte{0x45, 0x4d, 0x54, 0x31, 0xde, 0xad})
		s.seg.f.Close()
		return errors.New("disk failure")
	}
	if err := s.Append(mkBatch(2)); err == nil {
		t.Fatal("append with failing write must error")
	}
	s.writeFrame = tuple.WriteBinary
	if err := s.Append(mkBatch(3, 4)); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
	names, _ := segmentNames(dir)
	if len(names) != 2 {
		t.Fatalf("got segments %v, want a rotated second segment", names)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-recovery: the torn frame sits at the abandoned segment's
	// tail; every acked batch replays.
	s2, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatalf("recovery after rotation: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("recovered Len = %d, want 3 (batches 1 and 3)", s2.Len())
	}
}

func TestRecoverEnforcesRetain(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 6; c++ {
		if err := s.Append(mkBatch(float64(c)*100 + 50)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.WindowIndexes()); got != 2 {
		t.Fatalf("running store retains %d windows, want 2", got)
	}
	s.Close()

	// Segments still hold every window ever appended; replay must re-apply
	// the retention bound instead of resurrecting them all.
	s2, err := Open(Config{WindowLength: 100, Dir: dir, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.WindowIndexes(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("recovered WindowIndexes = %v, want [4 5]", got)
	}
}

func TestOnEvictHook(t *testing.T) {
	s, err := Open(Config{WindowLength: 100, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var evicted []int
	s.OnEvict(func(ws []int) {
		mu.Lock()
		evicted = append(evicted, ws...)
		mu.Unlock()
	})
	for c := 0; c < 5; c++ {
		if err := s.Append(mkBatch(float64(c)*100 + 50)); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 3 || evicted[0] != 0 || evicted[1] != 1 || evicted[2] != 2 {
		t.Errorf("evicted = %v, want [0 1 2]", evicted)
	}
}

func TestRecoveryRejectsCorruptionFollowedByIntactFrames(t *testing.T) {
	// A corrupt frame with intact frames after it inside one segment
	// cannot be produced by the write discipline (nothing is written
	// after a torn frame) — it is real damage, and recovery must fail
	// loudly instead of silently dropping the acked frames behind it.
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF // corrupt the FIRST frame; the second stays intact
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{WindowLength: 100, Dir: dir}); err == nil {
		t.Error("expected error for corruption followed by intact frames")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkBatch(2)); err == nil {
		t.Error("durable append after Close must fail")
	}
	names, _ := segmentNames(dir)
	if len(names) != 1 {
		t.Errorf("Close must not leave reopened segments: %v", names)
	}
}

func TestOnEvictUnregister(t *testing.T) {
	s, err := Open(Config{WindowLength: 100, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	unregister := s.OnEvict(func([]int) { calls++ })
	if err := s.Append(mkBatch(50, 150)); err != nil { // evicts window 0
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	unregister()
	if err := s.Append(mkBatch(250)); err != nil { // evicts window 1
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("unregistered hook still fired (calls = %d)", calls)
	}
}
