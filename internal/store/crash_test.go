package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/tuple"
)

// The crash-injection harness drives a scripted append/checkpoint
// workload through a store whose disk operations — frame writes, fsyncs,
// renames, removes — are instrumented. Two matrices run for every sync
// policy:
//
//   - The snapshot matrix copies the whole directory immediately BEFORE
//     every disk operation, i.e. the exact on-disk state a crash at that
//     instant would leave behind (modulo lost page cache, which the
//     fsync discipline, not this harness, protects against). Every
//     snapshot must reopen cleanly, contain every batch acknowledged by
//     then, contain nothing that was never appended, and — when a
//     committed checkpoint is present — recover from it and replay only
//     the segment suffix behind its horizon.
//
//   - The fault matrix re-runs the workload once per operation index,
//     failing exactly that operation. The store must degrade gracefully
//     (failed appends unacknowledged, failed checkpoints aborted), keep
//     working afterwards, and a reopen must surface every batch that was
//     acknowledged despite the fault.

// crashPolicies are the sync policies the matrices cover. Grouped uses
// MaxBatches=1 so groups seal inline on the appending goroutine, keeping
// the operation sequence deterministic.
var crashPolicies = []struct {
	name string
	sync SyncPolicy
}{
	{"every", SyncEveryBatch()},
	{"grouped", SyncGrouped(1, time.Second)},
	{"never", SyncNever()},
}

// crashStep is one scripted workload action.
type crashStep struct {
	batch      tuple.Batch // nil = checkpoint
	checkpoint bool
}

// crashWorkload spans four windows with two checkpoints, so the matrix
// crosses segment writes, checkpoint temp/rename commits, manifest
// replacement, and two rounds of compaction.
func crashWorkload() []crashStep {
	return []crashStep{
		{batch: mkBatch(10, 20)},
		{batch: mkBatch(150)},
		{checkpoint: true},
		{batch: mkBatch(160, 250)},
		{checkpoint: true},
		{batch: mkBatch(350)},
	}
}

// harness instruments a store's disk operations with fn, which runs
// before each operation and may veto it by returning an error.
func harness(s *Store, fn func(op string) error) {
	s.writeFrame = func(w io.Writer, b tuple.Batch) error {
		if err := fn("write"); err != nil {
			return err
		}
		return tuple.WriteBinary(w, b)
	}
	s.syncSeg = func(f *os.File) error {
		if err := fn("sync"); err != nil {
			return err
		}
		return f.Sync()
	}
	s.renameFile = func(oldpath, newpath string) error {
		if err := fn("rename"); err != nil {
			return err
		}
		return os.Rename(oldpath, newpath)
	}
	s.removeFile = func(path string) error {
		if err := fn("remove"); err != nil {
			return err
		}
		return os.Remove(path)
	}
}

func addTuples(dst map[tuple.Raw]int, b tuple.Batch) {
	for _, r := range b {
		dst[r]++
	}
}

func cloneTuples(src map[tuple.Raw]int) map[tuple.Raw]int {
	out := make(map[tuple.Raw]int, len(src))
	for r, n := range src {
		out[r] = n
	}
	return out
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// expectedRecovery is an independent oracle for what Open must do with
// dir: which checkpoint (if any) a recovery must use, and how many
// segments form the replay suffix.
func expectedRecovery(t *testing.T, dir string) (fromCheckpoint bool, seq, suffix int) {
	t.Helper()
	segNames, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	cks, err := checkpointSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	candidates := cks
	if manSeq, _, err := readManifest(dir); err == nil {
		reordered := []int{manSeq}
		for _, c := range cks {
			if c != manSeq {
				reordered = append(reordered, c)
			}
		}
		candidates = reordered
	}
	for _, c := range candidates {
		hdr, _, err := readCheckpointFile(filepath.Join(dir, checkpointName(c)))
		if err != nil {
			continue
		}
		n := 0
		for _, name := range segNames {
			if sq, _ := parseSeq(name, "segment-"); sq > hdr.horizon {
				n++
			}
		}
		return true, c, n
	}
	return false, 0, len(segNames)
}

// verifyCrashState opens a crash-consistent directory and checks the
// acknowledged-data and replay-counter invariants.
func verifyCrashState(t *testing.T, label, dir string, acked, ceiling map[tuple.Raw]int) {
	t.Helper()
	wantFromCk, wantSeq, wantSuffix := expectedRecovery(t, dir)
	re, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatalf("%s: reopen failed: %v", label, err)
	}
	defer re.Close()
	got := collectTuples(re)
	for r, n := range acked {
		if got[r] < n {
			t.Fatalf("%s: acknowledged tuple %v lost (%d/%d copies)", label, r, got[r], n)
		}
	}
	for r, n := range got {
		if n > ceiling[r] {
			t.Fatalf("%s: tuple %v recovered %d times, only %d ever appended", label, r, n, ceiling[r])
		}
	}
	rs := re.RecoveryStats()
	if rs.FromCheckpoint != wantFromCk {
		t.Fatalf("%s: FromCheckpoint = %v, oracle says %v", label, rs.FromCheckpoint, wantFromCk)
	}
	if wantFromCk && rs.CheckpointSeq != wantSeq {
		t.Fatalf("%s: recovered from checkpoint %d, oracle says %d", label, rs.CheckpointSeq, wantSeq)
	}
	if rs.SegmentsReplayed != wantSuffix {
		t.Fatalf("%s: replayed %d segments, oracle says %d", label, rs.SegmentsReplayed, wantSuffix)
	}
}

// TestCrashSnapshotMatrix captures the directory before every disk
// operation of the workload and proves each such crash state recovers.
func TestCrashSnapshotMatrix(t *testing.T) {
	for _, pol := range crashPolicies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			dir := t.TempDir()
			snapRoot := t.TempDir()
			s, err := Open(Config{WindowLength: 100, Dir: dir, Sync: pol.sync})
			if err != nil {
				t.Fatal(err)
			}

			type snap struct {
				label   string
				dir     string
				acked   map[tuple.Raw]int
				ceiling map[tuple.Raw]int
			}
			var (
				mu       sync.Mutex
				snaps    []snap
				acked    = map[tuple.Raw]int{}
				inflight tuple.Batch
			)
			ceiling := map[tuple.Raw]int{}
			for _, st := range crashWorkload() {
				addTuples(ceiling, st.batch)
			}
			harness(s, func(op string) error {
				mu.Lock()
				defer mu.Unlock()
				idx := len(snaps)
				d := filepath.Join(snapRoot, fmt.Sprintf("op%03d", idx))
				copyDir(t, dir, d)
				// A crash before this op may still surface the append in
				// flight (its frame can already be on disk), so the upper
				// bound is acked plus the in-flight batch.
				ceil := cloneTuples(acked)
				addTuples(ceil, inflight)
				snaps = append(snaps, snap{
					label:   fmt.Sprintf("%s/op%03d(%s)", pol.name, idx, op),
					dir:     d,
					acked:   cloneTuples(acked),
					ceiling: ceil,
				})
				return nil
			})

			for _, st := range crashWorkload() {
				if st.checkpoint {
					if err := s.Checkpoint(); err != nil {
						t.Fatal(err)
					}
					continue
				}
				mu.Lock()
				inflight = st.batch
				mu.Unlock()
				if err := s.Append(st.batch); err != nil {
					t.Fatal(err)
				}
				mu.Lock()
				inflight = nil
				addTuples(acked, st.batch)
				mu.Unlock()
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			if len(snaps) < 10 {
				t.Fatalf("harness captured only %d operations; instrumentation broken?", len(snaps))
			}
			for _, sn := range snaps {
				verifyCrashState(t, sn.label, sn.dir, sn.acked, sn.ceiling)
			}
			// The final (cleanly closed) state must hold exactly the
			// acknowledged data.
			verifyCrashState(t, pol.name+"/final", dir, acked, ceiling)
		})
	}
}

var errInjected = errors.New("injected fault")

// countWorkloadOps dry-runs the workload to size the fault matrix.
func countWorkloadOps(t *testing.T, pol SyncPolicy) int {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir, Sync: pol})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var mu sync.Mutex
	harness(s, func(string) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	})
	for _, st := range crashWorkload() {
		if st.checkpoint {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		} else if err := s.Append(st.batch); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	return n
}

// TestCrashFaultInjectionMatrix fails every disk operation of the
// workload in turn (one fault per run) and proves no acknowledged batch
// is ever lost and the store keeps functioning after the fault.
func TestCrashFaultInjectionMatrix(t *testing.T) {
	for _, pol := range crashPolicies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			total := countWorkloadOps(t, pol.sync)
			for k := 0; k < total; k++ {
				label := fmt.Sprintf("%s/fault%03d", pol.name, k)
				dir := t.TempDir()
				s, err := Open(Config{WindowLength: 100, Dir: dir, Sync: pol.sync})
				if err != nil {
					t.Fatal(err)
				}
				var (
					mu    sync.Mutex
					idx   int
					acked = map[tuple.Raw]int{}
				)
				harness(s, func(op string) error {
					mu.Lock()
					defer mu.Unlock()
					idx++
					if idx-1 == k {
						return fmt.Errorf("%w: %s op %d", errInjected, op, k)
					}
					return nil
				})
				ceiling := map[tuple.Raw]int{}
				for _, st := range crashWorkload() {
					addTuples(ceiling, st.batch)
					if st.checkpoint {
						// A vetoed checkpoint (or a vetoed compaction
						// after a committed one) reports its error but
						// must never lose acknowledged data.
						_ = s.Checkpoint()
						continue
					}
					if err := s.Append(st.batch); err == nil {
						addTuples(acked, st.batch)
					}
				}
				// The store must still accept work after the fault. The
				// injected fault may land on this very append (earlier
				// vetoed operations shorten the sequence) — but it fires
				// only once, so the retry must succeed.
				heal := mkBatch(420)
				addTuples(ceiling, heal)
				if err := s.Append(heal); err == nil {
					addTuples(acked, heal)
				} else {
					heal2 := mkBatch(430)
					addTuples(ceiling, heal2)
					if err := s.Append(heal2); err != nil {
						t.Fatalf("%s: store did not heal after fault: %v", label, err)
					}
					addTuples(acked, heal2)
				}
				_ = s.Close() // a poisoned final sync may legitimately error
				verifyCrashState(t, label, dir, acked, ceiling)
			}
		})
	}
}
