package store

import (
	"testing"

	"repro/internal/tuple"
)

// BenchmarkRecovery measures Open on a long-lived durable directory:
// full segment replay (the pre-checkpoint behavior) against recovery
// from a checkpoint of the retained windows. The deployment shape is a
// store that has ingested far more history than it retains — the case
// the checkpoint exists for, since replay cost then tracks Retain, not
// the whole log.
func BenchmarkRecovery(b *testing.B) {
	const (
		windowLen = 100.0
		windows   = 200
		perWindow = 500
		retain    = 8
	)
	build := func(b *testing.B, checkpoint bool) string {
		b.Helper()
		dir := b.TempDir()
		s, err := Open(Config{WindowLength: windowLen, Dir: dir, Retain: retain, Sync: SyncNever()})
		if err != nil {
			b.Fatal(err)
		}
		for w := 0; w < windows; w++ {
			batch := make(tuple.Batch, perWindow)
			for i := range batch {
				batch[i] = tuple.Raw{
					T: float64(w)*windowLen + float64(i)*windowLen/perWindow,
					X: float64(i % 100), Y: float64(i % 50), S: 400,
				}
			}
			if err := s.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, bc := range []struct {
		name       string
		checkpoint bool
	}{
		{"full-replay", false},
		{"checkpoint", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := build(b, bc.checkpoint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(Config{WindowLength: windowLen, Dir: dir, Retain: retain})
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != retain*perWindow {
					b.Fatalf("recovered %d tuples, want %d", s.Len(), retain*perWindow)
				}
				b.StopTimer()
				// Closing outside the timed region: the benchmark is
				// about recovery cost, not the close fsync.
				s.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(windows*perWindow), "tuples/log")
		})
	}
}
