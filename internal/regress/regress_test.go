package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFeatureFamilies(t *testing.T) {
	tests := []struct {
		f    Features
		dim  int
		name string
	}{
		{Constant, 1, "constant"},
		{LinearXY, 3, "linear-xy"},
		{LinearXYT, 4, "linear-xyt"},
		{QuadraticXY, 7, "quadratic-xy"},
	}
	for _, tt := range tests {
		if tt.f.Dim() != tt.dim {
			t.Errorf("%s: Dim = %d, want %d", tt.name, tt.f.Dim(), tt.dim)
		}
		if tt.f.Name() != tt.name {
			t.Errorf("Name = %q, want %q", tt.f.Name(), tt.name)
		}
		got, err := FeaturesByName(tt.name)
		if err != nil || got.Name() != tt.name {
			t.Errorf("FeaturesByName(%q) = %v, %v", tt.name, got, err)
		}
	}
	if _, err := FeaturesByName("cubic"); err == nil {
		t.Error("expected error for unknown family")
	}
}

func TestFitRecoversExactLinear(t *testing.T) {
	// s = 400 + 0.02x - 0.01y + 0.001t, no noise.
	rng := rand.New(rand.NewSource(7))
	n := 200
	ts := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	ss := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = rng.Float64() * 1e4
		xs[i] = (rng.Float64() - 0.5) * 5000
		ys[i] = (rng.Float64() - 0.5) * 5000
		ss[i] = 400 + 0.02*xs[i] - 0.01*ys[i] + 0.001*ts[i]
	}
	m, err := Fit(LinearXYT, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{400, 0.02, -0.01, 0.001}
	for i, c := range m.Coef() {
		if math.Abs(c-want[i]) > 1e-6 {
			t.Errorf("coef[%d] = %v, want %v", i, c, want[i])
		}
	}
	if r2 := m.R2(); r2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", r2)
	}
	if m.RMSE() > 1e-6 {
		t.Errorf("RMSE = %v, want ~0", m.RMSE())
	}
	if m.N() != n {
		t.Errorf("N = %d, want %d", m.N(), n)
	}
}

func TestFitWithNoiseBeatsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 500
	ts := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	ss := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = rng.Float64() * 1000
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
		ss[i] = 500 + 0.3*xs[i] + rng.NormFloat64()*5
	}
	lin, err := Fit(LinearXY, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	con, err := Fit(Constant, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	if lin.RMSE() >= con.RMSE() {
		t.Errorf("linear RMSE %v should beat constant RMSE %v", lin.RMSE(), con.RMSE())
	}
	if lin.RMSE() > 10 {
		t.Errorf("linear RMSE %v unexpectedly large", lin.RMSE())
	}
}

func TestConstantModelIsMean(t *testing.T) {
	ss := []float64{10, 20, 30, 40}
	zeros := make([]float64, len(ss))
	m, err := Fit(Constant, zeros, zeros, zeros, ss)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(123, 456, 789); math.Abs(got-25) > 1e-9 {
		t.Errorf("constant prediction = %v, want 25", got)
	}
}

func TestFitDegenerateDesigns(t *testing.T) {
	t.Run("single point", func(t *testing.T) {
		m, err := Fit(LinearXYT, []float64{5}, []float64{1}, []float64{2}, []float64{42})
		if err != nil {
			t.Fatalf("single-point fit should succeed via ridge: %v", err)
		}
		if got := m.Predict(5, 1, 2); math.Abs(got-42) > 1 {
			t.Errorf("prediction at the sole point = %v, want ~42", got)
		}
	})
	t.Run("collinear points", func(t *testing.T) {
		// All points on the line y = 2x: the xy design is rank deficient.
		n := 50
		ts := make([]float64, n)
		xs := make([]float64, n)
		ys := make([]float64, n)
		ss := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = 2 * float64(i)
			ss[i] = 100 + float64(i)
		}
		m, err := Fit(LinearXY, ts, xs, ys, ss)
		if err != nil {
			t.Fatalf("collinear fit should succeed via ridge: %v", err)
		}
		// On-line predictions should still be accurate.
		if got := m.Predict(0, 10, 20); math.Abs(got-110) > 0.5 {
			t.Errorf("on-line prediction = %v, want ~110", got)
		}
	})
	t.Run("identical points", func(t *testing.T) {
		ts := []float64{1, 1, 1}
		xs := []float64{2, 2, 2}
		ys := []float64{3, 3, 3}
		ss := []float64{10, 12, 14}
		m, err := Fit(LinearXYT, ts, xs, ys, ss)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Predict(1, 2, 3); math.Abs(got-12) > 0.5 {
			t.Errorf("prediction = %v, want ~12 (the mean)", got)
		}
	})
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(LinearXY, nil, nil, nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := Fit(LinearXY, []float64{1}, []float64{1, 2}, []float64{1}, []float64{1}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestNewModelRoundTrip(t *testing.T) {
	coef := []float64{400, 0.1, -0.2, 0.05}
	m, err := NewModel(LinearXYT, coef)
	if err != nil {
		t.Fatal(err)
	}
	want := 400 + 0.1*10 - 0.2*20 + 0.05*30
	if got := m.Predict(30, 10, 20); math.Abs(got-want) > 1e-12 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
	// Coefficients must be copied.
	coef[0] = 999
	if m.Coef()[0] != 400 {
		t.Error("NewModel must copy coefficients")
	}
	if _, err := NewModel(LinearXYT, []float64{1, 2}); err == nil {
		t.Error("expected error for wrong coefficient count")
	}
}

func TestPredictMatchesGenericEval(t *testing.T) {
	// The type-switched fast paths must agree with the generic dot product.
	rng := rand.New(rand.NewSource(9))
	for _, f := range []Features{Constant, LinearXY, LinearXYT, QuadraticXY} {
		coef := make([]float64, f.Dim())
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		m, err := NewModel(f, coef)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			tv, xv, yv := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
			row := make([]float64, f.Dim())
			f.Eval(row, tv, xv, yv)
			var want float64
			for i := range coef {
				want += coef[i] * row[i]
			}
			if got := m.Predict(tv, xv, yv); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("%s: Predict = %v, want %v", f.Name(), got, want)
			}
		}
	}
}

func TestQuadraticFitsCurvedSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 400
	ts := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	ss := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = (rng.Float64() - 0.5) * 100
		ys[i] = (rng.Float64() - 0.5) * 100
		ss[i] = 3 + 0.5*xs[i]*xs[i] - 0.25*ys[i]*ys[i] + xs[i]*ys[i]
	}
	lin, err := Fit(LinearXY, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Fit(QuadraticXY, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	// Normal equations square the condition number, so allow small numeric
	// residue relative to the target scale (values reach ~3700 here).
	if quad.RMSE() > 0.1 {
		t.Errorf("quadratic RMSE = %v, want ≈0 on quadratic data", quad.RMSE())
	}
	if quad.RMSE() >= lin.RMSE() {
		t.Errorf("quadratic (%v) should beat linear (%v)", quad.RMSE(), lin.RMSE())
	}
}

func TestR2Bounds(t *testing.T) {
	// R² of an OLS fit with intercept is within [0, 1] up to numeric noise.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		ts := make([]float64, n)
		xs := make([]float64, n)
		ys := make([]float64, n)
		ss := make([]float64, n)
		for i := 0; i < n; i++ {
			ts[i] = rng.NormFloat64() * 10
			xs[i] = rng.NormFloat64() * 10
			ys[i] = rng.NormFloat64() * 10
			ss[i] = rng.NormFloat64() * 10
		}
		m, err := Fit(LinearXYT, ts, xs, ys, ss)
		if err != nil {
			return false
		}
		r2 := m.R2()
		return r2 > -1e-6 && r2 < 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
