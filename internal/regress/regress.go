// Package regress implements ordinary-least-squares linear regression on
// configurable feature maps. It is the model-fitting substrate behind the
// paper's model cover: for each sub-region R_j produced by Ad-KMN, a linear
// regression model M_j is estimated over the raw tuples assigned to R_j
// (§2.1) and later evaluated at query positions (§2.2).
//
// The solver is a dense normal-equations solve via Gaussian elimination
// with partial pivoting and a small ridge fallback for rank-deficient
// designs (which occur naturally when a cluster's tuples are collinear —
// e.g. sampled along a straight road segment).
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Features maps an input (t, x, y) to a feature vector. The first feature
// is conventionally the intercept term 1.
type Features interface {
	// Dim returns the length of the feature vector.
	Dim() int
	// Eval writes the feature vector for (t, x, y) into dst, which has
	// length Dim. Using a caller-provided buffer keeps fitting allocation
	// free on the hot path.
	Eval(dst []float64, t, x, y float64)
	// Name identifies the feature family for diagnostics and wire encoding.
	Name() string
}

// The feature families used by EnviroMeter. Linear on (x, y, t) is the
// paper's choice; the others support the model-family ablation.
var (
	// Constant fits only an intercept: the cluster mean.
	Constant Features = constantFeatures{}
	// LinearT fits s = β0 + β1·t: per-region temporal drift. For data
	// sampled along 1-D bus corridors this is the family that generalizes
	// best — spatial structure is captured by the region partitioning
	// itself, while spatial slopes fitted on corridor-constrained samples
	// are ill-determined perpendicular to the route.
	LinearT Features = linearTFeatures{}
	// LinearXY fits s = β0 + β1·x + β2·y.
	LinearXY Features = linearXYFeatures{}
	// LinearXYT fits s = β0 + β1·x + β2·y + β3·t. This is the model family
	// the paper's Ad-KMN uses ("we estimate linear regression models").
	LinearXYT Features = linearXYTFeatures{}
	// QuadraticXY fits a full second-order polynomial in x and y plus a
	// linear time term.
	QuadraticXY Features = quadraticXYFeatures{}
)

type constantFeatures struct{}

func (constantFeatures) Dim() int     { return 1 }
func (constantFeatures) Name() string { return "constant" }
func (constantFeatures) Eval(dst []float64, t, x, y float64) {
	dst[0] = 1
}

type linearTFeatures struct{}

func (linearTFeatures) Dim() int     { return 2 }
func (linearTFeatures) Name() string { return "linear-t" }
func (linearTFeatures) Eval(dst []float64, t, x, y float64) {
	dst[0], dst[1] = 1, t
}

type linearXYFeatures struct{}

func (linearXYFeatures) Dim() int     { return 3 }
func (linearXYFeatures) Name() string { return "linear-xy" }
func (linearXYFeatures) Eval(dst []float64, t, x, y float64) {
	dst[0], dst[1], dst[2] = 1, x, y
}

type linearXYTFeatures struct{}

func (linearXYTFeatures) Dim() int     { return 4 }
func (linearXYTFeatures) Name() string { return "linear-xyt" }
func (linearXYTFeatures) Eval(dst []float64, t, x, y float64) {
	dst[0], dst[1], dst[2], dst[3] = 1, x, y, t
}

type quadraticXYFeatures struct{}

func (quadraticXYFeatures) Dim() int     { return 7 }
func (quadraticXYFeatures) Name() string { return "quadratic-xy" }
func (quadraticXYFeatures) Eval(dst []float64, t, x, y float64) {
	dst[0], dst[1], dst[2], dst[3] = 1, x, y, t
	dst[4], dst[5], dst[6] = x*x, y*y, x*y
}

// FeaturesByName resolves a feature family from its wire name.
func FeaturesByName(name string) (Features, error) {
	switch name {
	case "constant":
		return Constant, nil
	case "linear-t":
		return LinearT, nil
	case "linear-xy":
		return LinearXY, nil
	case "linear-xyt":
		return LinearXYT, nil
	case "quadratic-xy":
		return QuadraticXY, nil
	default:
		return nil, fmt.Errorf("regress: unknown feature family %q", name)
	}
}

// Model is a fitted linear model: Predict = coef · features(t, x, y).
type Model struct {
	features Features
	coef     []float64

	// Fit diagnostics.
	n   int     // number of observations used
	rss float64 // residual sum of squares
	tss float64 // total sum of squares around the mean
}

// Fit estimates an OLS model of the observations. ts, xs, ys and ss must
// have equal length n ≥ 1. Rank-deficient designs are regularized with a
// tiny ridge term so that degenerate clusters (single point, collinear
// points) still yield a usable model rather than an error: the paper's
// Ad-KMN routinely creates very small clusters while splitting.
func Fit(f Features, ts, xs, ys, ss []float64) (*Model, error) {
	n := len(ss)
	if n == 0 {
		return nil, errors.New("regress: no observations")
	}
	if len(ts) != n || len(xs) != n || len(ys) != n {
		return nil, fmt.Errorf("regress: length mismatch t=%d x=%d y=%d s=%d",
			len(ts), len(xs), len(ys), n)
	}
	d := f.Dim()

	// Accumulate the normal equations XᵀX β = Xᵀs.
	xtx := make([]float64, d*d)
	xty := make([]float64, d)
	row := make([]float64, d)
	var mean float64
	for i := 0; i < n; i++ {
		f.Eval(row, ts[i], xs[i], ys[i])
		for a := 0; a < d; a++ {
			xty[a] += row[a] * ss[i]
			for b := a; b < d; b++ {
				xtx[a*d+b] += row[a] * row[b]
			}
		}
		mean += ss[i]
	}
	mean /= float64(n)
	// Mirror the upper triangle.
	for a := 0; a < d; a++ {
		for b := 0; b < a; b++ {
			xtx[a*d+b] = xtx[b*d+a]
		}
	}

	coef, err := solveSPD(xtx, xty, d)
	if err != nil {
		// Rank deficient: retry with a small ridge proportional to the
		// trace, which always succeeds.
		var trace float64
		for a := 0; a < d; a++ {
			trace += xtx[a*d+a]
		}
		ridge := 1e-9 * (trace + 1)
		for a := 0; a < d; a++ {
			xtx[a*d+a] += ridge
		}
		coef, err = solveSPD(xtx, xty, d)
		if err != nil {
			return nil, fmt.Errorf("regress: singular design even with ridge: %w", err)
		}
	}

	m := &Model{features: f, coef: coef, n: n}
	for i := 0; i < n; i++ {
		pred := m.Predict(ts[i], xs[i], ys[i])
		r := ss[i] - pred
		m.rss += r * r
		dm := ss[i] - mean
		m.tss += dm * dm
	}
	return m, nil
}

// solveSPD solves A β = b for a d×d system via Gaussian elimination with
// partial pivoting. A is row-major and is clobbered.
func solveSPD(a, b []float64, d int) ([]float64, error) {
	// Work on copies so the caller can retry with regularization.
	m := make([]float64, len(a))
	copy(m, a)
	rhs := make([]float64, d)
	copy(rhs, b)

	for col := 0; col < d; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col*d+col])
		for r := col + 1; r < d; r++ {
			if v := math.Abs(m[r*d+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("regress: pivot %d below tolerance (%.3g)", col, best)
		}
		if pivot != col {
			for c := 0; c < d; c++ {
				m[col*d+c], m[pivot*d+c] = m[pivot*d+c], m[col*d+c]
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		inv := 1 / m[col*d+col]
		for r := col + 1; r < d; r++ {
			f := m[r*d+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < d; c++ {
				m[r*d+c] -= f * m[col*d+c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	out := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		sum := rhs[r]
		for c := r + 1; c < d; c++ {
			sum -= m[r*d+c] * out[c]
		}
		out[r] = sum / m[r*d+r]
	}
	return out, nil
}

// MeanModel builds a constant-prediction model expressed in family f: the
// intercept carries the mean of ss and all other coefficients are zero.
// All built-in families place the intercept first, so the model predicts
// the mean everywhere. Ad-KMN falls back to this for clusters too small to
// support a full regression.
func MeanModel(f Features, ss []float64) (*Model, error) {
	if len(ss) == 0 {
		return nil, errors.New("regress: no observations")
	}
	var mean float64
	for _, s := range ss {
		mean += s
	}
	mean /= float64(len(ss))
	coef := make([]float64, f.Dim())
	coef[0] = mean
	m := &Model{features: f, coef: coef, n: len(ss)}
	for _, s := range ss {
		d := s - mean
		m.rss += d * d
	}
	m.tss = m.rss
	return m, nil
}

// NewModel reconstructs a model from its feature family and coefficients,
// as received over the wire by the model-cache client. Fit diagnostics are
// unavailable on reconstructed models.
func NewModel(f Features, coef []float64) (*Model, error) {
	if len(coef) != f.Dim() {
		return nil, fmt.Errorf("regress: %s wants %d coefficients, got %d",
			f.Name(), f.Dim(), len(coef))
	}
	cp := make([]float64, len(coef))
	copy(cp, coef)
	return &Model{features: f, coef: cp}, nil
}

// Predict evaluates the model at (t, x, y).
func (m *Model) Predict(t, x, y float64) float64 {
	switch m.features.(type) {
	case constantFeatures:
		return m.coef[0]
	case linearTFeatures:
		return m.coef[0] + m.coef[1]*t
	case linearXYFeatures:
		return m.coef[0] + m.coef[1]*x + m.coef[2]*y
	case linearXYTFeatures:
		return m.coef[0] + m.coef[1]*x + m.coef[2]*y + m.coef[3]*t
	case quadraticXYFeatures:
		return m.coef[0] + m.coef[1]*x + m.coef[2]*y + m.coef[3]*t +
			m.coef[4]*x*x + m.coef[5]*y*y + m.coef[6]*x*y
	}
	// Generic fallback for external feature families.
	row := make([]float64, m.features.Dim())
	m.features.Eval(row, t, x, y)
	var sum float64
	for i, c := range m.coef {
		sum += c * row[i]
	}
	return sum
}

// Coef returns a copy of the model coefficients.
func (m *Model) Coef() []float64 {
	cp := make([]float64, len(m.coef))
	copy(cp, m.coef)
	return cp
}

// Features returns the model's feature family.
func (m *Model) Features() Features { return m.features }

// N returns the number of observations used to fit the model (0 for
// reconstructed models).
func (m *Model) N() int { return m.n }

// RSS returns the residual sum of squares from fitting.
func (m *Model) RSS() float64 { return m.rss }

// R2 returns the coefficient of determination. For constant targets
// (tss == 0) it returns 1 if the fit is exact and 0 otherwise.
func (m *Model) R2() float64 {
	if m.tss == 0 {
		if m.rss < 1e-12 {
			return 1
		}
		return 0
	}
	return 1 - m.rss/m.tss
}

// RMSE returns the root-mean-square error over the fitting data.
func (m *Model) RMSE() float64 {
	if m.n == 0 {
		return 0
	}
	return math.Sqrt(m.rss / float64(m.n))
}

func (m *Model) String() string {
	return fmt.Sprintf("Model(%s, coef=%v, n=%d)", m.features.Name(), m.coef, m.n)
}
