package regress

import (
	"math"
	"strings"
	"testing"
)

func TestLinearTFamily(t *testing.T) {
	if LinearT.Dim() != 2 || LinearT.Name() != "linear-t" {
		t.Fatalf("LinearT dim=%d name=%q", LinearT.Dim(), LinearT.Name())
	}
	dst := make([]float64, 2)
	LinearT.Eval(dst, 7, 100, 200)
	if dst[0] != 1 || dst[1] != 7 {
		t.Errorf("Eval = %v, want [1 7]", dst)
	}
	got, err := FeaturesByName("linear-t")
	if err != nil || got.Name() != "linear-t" {
		t.Errorf("FeaturesByName: %v %v", got, err)
	}
}

func TestLinearTFitRecoversDrift(t *testing.T) {
	// s = 500 + 0.2 t, positions irrelevant.
	n := 100
	ts := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	ss := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i * 10)
		xs[i] = float64(i % 7)
		ys[i] = float64(i % 5)
		ss[i] = 500 + 0.2*ts[i]
	}
	m, err := Fit(LinearT, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	coef := m.Coef()
	if math.Abs(coef[0]-500) > 1e-6 || math.Abs(coef[1]-0.2) > 1e-9 {
		t.Errorf("coef = %v, want [500 0.2]", coef)
	}
	// Predict at an unseen time, arbitrary position.
	if got := m.Predict(2000, 99, 99); math.Abs(got-900) > 1e-6 {
		t.Errorf("Predict = %v, want 900", got)
	}
}

func TestMeanModel(t *testing.T) {
	ss := []float64{10, 20, 30}
	for _, f := range []Features{Constant, LinearT, LinearXY, LinearXYT, QuadraticXY} {
		m, err := MeanModel(f, ss)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		// Predicts the mean everywhere, regardless of inputs.
		for _, in := range [][3]float64{{0, 0, 0}, {100, -50, 7}, {1e6, 1e6, 1e6}} {
			if got := m.Predict(in[0], in[1], in[2]); math.Abs(got-20) > 1e-12 {
				t.Errorf("%s: Predict(%v) = %v, want 20", f.Name(), in, got)
			}
		}
		if m.N() != 3 {
			t.Errorf("%s: N = %d", f.Name(), m.N())
		}
		// RSS is the variance sum: (10-20)² + 0 + (30-20)² = 200.
		if math.Abs(m.RSS()-200) > 1e-12 {
			t.Errorf("%s: RSS = %v, want 200", f.Name(), m.RSS())
		}
	}
	if _, err := MeanModel(Constant, nil); err == nil {
		t.Error("empty MeanModel should error")
	}
}

func TestModelAccessors(t *testing.T) {
	ts := []float64{0, 1, 2, 3}
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 0, 0, 0}
	ss := []float64{1, 3, 5, 7} // exactly 1 + 2x
	m, err := Fit(LinearXY, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	if m.Features().Name() != "linear-xy" {
		t.Errorf("Features = %v", m.Features().Name())
	}
	if m.RSS() > 1e-9 {
		t.Errorf("RSS = %v, want ~0", m.RSS())
	}
	if m.RMSE() > 1e-6 {
		t.Errorf("RMSE = %v", m.RMSE())
	}
	if r2 := m.R2(); math.Abs(r2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", r2)
	}
	s := m.String()
	if !strings.Contains(s, "linear-xy") || !strings.Contains(s, "n=4") {
		t.Errorf("String = %q", s)
	}
}

func TestR2ConstantTarget(t *testing.T) {
	// tss == 0: R² is 1 for an exact fit, 0 otherwise.
	exact, err := MeanModel(Constant, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if exact.R2() != 1 {
		t.Errorf("exact constant fit R2 = %v, want 1", exact.R2())
	}
	// A reconstructed model with the wrong constant against constant data
	// has rss > 0; emulate by fitting then checking the branch via a model
	// whose fit is imperfect on a constant target.
	m := &Model{features: Constant, coef: []float64{4}, n: 3, rss: 3, tss: 0}
	if m.R2() != 0 {
		t.Errorf("imperfect constant fit R2 = %v, want 0", m.R2())
	}
}

func TestRMSEZeroObservations(t *testing.T) {
	m, err := NewModel(Constant, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if m.RMSE() != 0 {
		t.Errorf("reconstructed model RMSE = %v, want 0", m.RMSE())
	}
	if m.N() != 0 {
		t.Errorf("reconstructed model N = %d, want 0", m.N())
	}
}

// customFeatures exercises the generic (non-type-switched) Predict path.
type customFeatures struct{}

func (customFeatures) Dim() int     { return 2 }
func (customFeatures) Name() string { return "custom" }
func (customFeatures) Eval(dst []float64, t, x, y float64) {
	dst[0], dst[1] = 1, x*y
}

func TestPredictGenericFallback(t *testing.T) {
	m, err := NewModel(customFeatures{}, []float64{10, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(0, 3, 4); math.Abs(got-34) > 1e-12 {
		t.Errorf("Predict = %v, want 34 (10 + 2·12)", got)
	}
}

func TestFitCustomFeatures(t *testing.T) {
	// Fit with an external family: s = 5 + 3·x·y.
	n := 50
	ts := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	ss := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%10) - 5
		ys[i] = float64(i%7) - 3
		ss[i] = 5 + 3*xs[i]*ys[i]
	}
	m, err := Fit(customFeatures{}, ts, xs, ys, ss)
	if err != nil {
		t.Fatal(err)
	}
	coef := m.Coef()
	if math.Abs(coef[0]-5) > 1e-6 || math.Abs(coef[1]-3) > 1e-6 {
		t.Errorf("coef = %v, want [5 3]", coef)
	}
}
