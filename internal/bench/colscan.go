package bench

// The PR-8 columnar-scan benchmark: the same checkpointed multi-window
// log is reopened through the columnar sidecar (lazy recovery + block
// scans) and through plain row replay (eager checkpoint decode), and
// both paths run the analytical workloads the sidecar targets — cold
// cover builds, cold region heatmaps, and zone-pruned region scans.
// Every phase cross-checks the two paths bit-for-bit before any timing
// is reported. The result serializes to BENCH_8.json.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/store"
	"repro/internal/tuple"
)

// ColscanConfig parameterizes the columnar-scan benchmark.
type ColscanConfig struct {
	// Windows is how many time windows the checkpointed log spans (the
	// acceptance run uses 200).
	Windows int `json:"windows"`
	// TuplesPerWindow is the ingest density.
	TuplesPerWindow int `json:"tuples_per_window"`
	// WindowLen is the window length in seconds.
	WindowLen float64 `json:"window_len_s"`
	// CoverWindows is how many windows the cold cover-build phase
	// touches, spread evenly across the log.
	CoverWindows int `json:"cover_windows"`
	// HeatmapRounds is how many cold region-heatmap renders each path
	// performs; every round reopens the store, so each render pays the
	// full restart-to-pixels cost.
	HeatmapRounds int `json:"heatmap_rounds"`
	// Cols and Rows are the heatmap raster dimensions.
	Cols int `json:"cols"`
	Rows int `json:"rows"`
	// RegionScans is how many zone-pruned region scans run per path.
	RegionScans int `json:"region_scans"`
	// BlockTuples overrides the sidecar tuples-per-block target (0 =
	// colblock default).
	BlockTuples int `json:"block_tuples"`
	// Seed drives the synthetic deployment and clustering.
	Seed int64 `json:"seed"`
}

// DefaultColscanConfig returns the committed BENCH_8.json workload: a
// 200-window checkpointed log, per the acceptance criterion.
func DefaultColscanConfig() ColscanConfig {
	return ColscanConfig{
		Windows:         200,
		TuplesPerWindow: 500,
		WindowLen:       600,
		CoverWindows:    8,
		HeatmapRounds:   12,
		Cols:            48,
		Rows:            32,
		RegionScans:     64,
		BlockTuples:     128,
		Seed:            1,
	}
}

// ColscanResult is the benchmark's measurement, the schema of
// BENCH_8.json. Row* fields measure the eager row-replay path, Col* the
// columnar sidecar path, over identical on-disk state.
type ColscanResult struct {
	Config ColscanConfig `json:"config"`

	// TuplesIngested is the checkpointed log's tuple count;
	// CheckpointBytes and SidecarBytes are the two files' sizes, and
	// BlocksWritten the sidecar's block count.
	TuplesIngested  int   `json:"tuples_ingested"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	SidecarBytes    int64 `json:"sidecar_bytes"`
	BlocksWritten   int64 `json:"blocks_written"`

	// Cold open + CoverWindows cover builds, end to end.
	RowCoverBuildMs float64 `json:"row_cover_build_ms"`
	ColCoverBuildMs float64 `json:"col_cover_build_ms"`
	CoverSpeedup    float64 `json:"cover_speedup"`

	// Cold region heatmaps: every round reopens the store and renders
	// one window; percentiles are across rounds.
	RowHeatmapP50Ms float64 `json:"row_heatmap_p50_ms"`
	RowHeatmapP99Ms float64 `json:"row_heatmap_p99_ms"`
	ColHeatmapP50Ms float64 `json:"col_heatmap_p50_ms"`
	ColHeatmapP99Ms float64 `json:"col_heatmap_p99_ms"`
	HeatmapSpeedup  float64 `json:"heatmap_speedup"`

	// Zone-pruned region scans (columnar) vs filtered window reads
	// (row) on a lazily recovered store.
	RowRegionScanP50Ms float64 `json:"row_region_scan_p50_ms"`
	ColRegionScanP50Ms float64 `json:"col_region_scan_p50_ms"`

	// Columnar reader accounting, summed across the columnar phases.
	ColBytesRead  int64 `json:"col_bytes_read"`
	BlocksScanned int64 `json:"blocks_scanned"`
	BlocksPruned  int64 `json:"blocks_pruned"`
	MmapReads     int64 `json:"mmap_reads"`
	ReadAtReads   int64 `json:"read_at_reads"`
	// RowBytesRead is what each eager open decodes: the full checkpoint
	// file, once per row-path open.
	RowBytesRead int64 `json:"row_bytes_read"`

	// Equivalent records that every cross-check passed: covers, heatmap
	// rasters, and region scans bit-identical between the two paths.
	Equivalent bool `json:"equivalent"`
}

// colscanClusters returns window c's cluster centers: a handful of
// sites that drift window to window, so blocks sort into distinct cell
// runs and region scans have something to prune.
func colscanClusters(c int, rng *rand.Rand) []geo.Point {
	centers := make([]geo.Point, 4)
	for i := range centers {
		centers[i] = geo.Point{
			X: float64((c*7+i*13)%40)*500 + rng.Float64()*50,
			Y: float64((c*3+i*11)%30)*500 + rng.Float64()*50,
		}
	}
	return centers
}

// colscanBuild ingests the deployment into dir and checkpoints it with
// the sidecar enabled, returning the log's tuple count and write stats.
func colscanBuild(cfg ColscanConfig, dir string) (int, store.ColumnarStats, error) {
	st, err := store.Open(store.Config{
		WindowLength: cfg.WindowLen,
		Dir:          dir,
		Sync:         store.SyncNever(),
		Columnar:     store.ColumnarConfig{Enabled: true, BlockTuples: cfg.BlockTuples},
	})
	if err != nil {
		return 0, store.ColumnarStats{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := 0
	for c := 0; c < cfg.Windows; c++ {
		centers := colscanClusters(c, rng)
		b := make(tuple.Batch, cfg.TuplesPerWindow)
		for i := range b {
			ct := centers[i%len(centers)]
			b[i] = tuple.Raw{
				T: float64(c)*cfg.WindowLen + rng.Float64()*cfg.WindowLen,
				X: ct.X + rng.NormFloat64()*120,
				Y: ct.Y + rng.NormFloat64()*120,
				S: 420 + 0.02*ct.X + 0.01*ct.Y + rng.NormFloat64()*5,
			}
		}
		if err := st.Append(b); err != nil {
			st.Close()
			return 0, store.ColumnarStats{}, err
		}
		total += len(b)
	}
	if err := st.Checkpoint(); err != nil {
		st.Close()
		return 0, store.ColumnarStats{}, err
	}
	ws := st.ColumnarStats()
	if err := st.Close(); err != nil {
		return 0, store.ColumnarStats{}, err
	}
	return total, ws, nil
}

// colscanOpen opens the built log through one of the two scan paths.
func colscanOpen(cfg ColscanConfig, dir string, columnar bool) (*store.Store, error) {
	return store.Open(store.Config{
		WindowLength: cfg.WindowLen,
		Dir:          dir,
		Sync:         store.SyncNever(),
		Columnar:     store.ColumnarConfig{Enabled: columnar, BlockTuples: cfg.BlockTuples},
	})
}

// copyBenchDir duplicates the built log so each path reopens identical
// on-disk state without the other's segment-file footprint.
func copyBenchDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// coverWindowsFor spreads the cover-build phase evenly across the log.
func coverWindowsFor(cfg ColscanConfig) []int {
	n := cfg.CoverWindows
	if n > cfg.Windows {
		n = cfg.Windows
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i * cfg.Windows / n
	}
	return out
}

// sampleGrid returns fixed probe points inside window c's data extent.
func sampleGrid(st *store.Store, c int, cfg ColscanConfig) []geo.Point {
	bounds, ok := st.WindowBounds(c)
	if !ok {
		return nil
	}
	var pts []geo.Point
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			pts = append(pts, geo.Point{
				X: bounds.Min.X + (bounds.Max.X-bounds.Min.X)*float64(i)/3,
				Y: bounds.Min.Y + (bounds.Max.Y-bounds.Min.Y)*float64(j)/3,
			})
		}
	}
	return pts
}

// RunColscan executes the columnar-scan benchmark: build once, then
// drive both scan paths over copies of the same files.
func RunColscan(cfg ColscanConfig, scratch string) (*ColscanResult, error) {
	if cfg.Windows <= 0 || cfg.TuplesPerWindow <= 0 || cfg.WindowLen <= 0 {
		return nil, fmt.Errorf("bench: colscan config %+v: counts and window length must be > 0", cfg)
	}
	if cfg.CoverWindows <= 0 || cfg.HeatmapRounds <= 0 || cfg.Cols <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("bench: colscan config %+v: phase sizes must be > 0", cfg)
	}
	res := &ColscanResult{Config: cfg, Equivalent: true}

	buildDir := filepath.Join(scratch, "log")
	total, ws, err := colscanBuild(cfg, buildDir)
	if err != nil {
		return nil, err
	}
	res.TuplesIngested = total
	res.BlocksWritten = ws.BlocksWritten
	if ws.SidecarsWritten == 0 || ws.WriteFailures != 0 {
		return nil, fmt.Errorf("bench: sidecar not written (stats %+v)", ws)
	}
	entries, err := os.ReadDir(buildDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		switch {
		case filepath.Ext(e.Name()) == ".emc":
			res.SidecarBytes += info.Size()
		case len(e.Name()) > 11 && e.Name()[:11] == "checkpoint-":
			res.CheckpointBytes += info.Size()
		}
	}
	rowDir := filepath.Join(scratch, "row")
	colDir := filepath.Join(scratch, "col")
	if err := copyBenchDir(buildDir, rowDir); err != nil {
		return nil, err
	}
	if err := copyBenchDir(buildDir, colDir); err != nil {
		return nil, err
	}
	dirFor := func(columnar bool) string {
		if columnar {
			return colDir
		}
		return rowDir
	}

	// Phase 1 — cold cover builds: restart-to-covers over CoverWindows
	// windows, plus bit-exact probes of every built cover.
	covers := coverWindowsFor(cfg)
	type probe struct{ v float64 }
	probes := map[bool][]probe{}
	for _, columnar := range []bool{false, true} {
		t0 := time.Now()
		st, err := colscanOpen(cfg, dirFor(columnar), columnar)
		if err != nil {
			return nil, err
		}
		mnt := core.NewMaintainer(st, PaperConfig(0.02, cfg.Seed))
		for _, c := range covers {
			cv, err := mnt.CoverFor(c)
			if err != nil {
				mnt.Close()
				st.Close()
				return nil, fmt.Errorf("bench: cover window %d (columnar=%v): %w", c, columnar, err)
			}
			tt := (float64(c) + 0.5) * cfg.WindowLen
			for _, p := range sampleGrid(st, c, cfg) {
				v, err := cv.Interpolate(tt, p.X, p.Y)
				if err != nil {
					v = math.NaN()
				}
				probes[columnar] = append(probes[columnar], probe{v})
			}
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if columnar {
			res.ColCoverBuildMs = ms
			cs := st.ColumnarStats()
			res.ColBytesRead += cs.BytesRead
			res.BlocksScanned += cs.BlocksScanned
			res.BlocksPruned += cs.BlocksPruned
			res.MmapReads += cs.MmapReads
			res.ReadAtReads += cs.ReadAtReads
		} else {
			res.RowCoverBuildMs = ms
			res.RowBytesRead += res.CheckpointBytes
		}
		mnt.Close()
		st.Close()
	}
	if len(probes[false]) != len(probes[true]) {
		res.Equivalent = false
	} else {
		for i := range probes[false] {
			a, b := probes[false][i].v, probes[true][i].v
			if math.Float64bits(a) != math.Float64bits(b) {
				res.Equivalent = false
				break
			}
		}
	}
	if res.ColCoverBuildMs > 0 {
		res.CoverSpeedup = res.RowCoverBuildMs / res.ColCoverBuildMs
	}

	// Phase 2 — cold region heatmaps: each round is restart → cover →
	// raster of one window over its exact bounds; rasters must match
	// cell for cell across the paths.
	grids := map[bool][]*heatmap.Grid{}
	for _, columnar := range []bool{false, true} {
		var lat []float64
		for r := 0; r < cfg.HeatmapRounds; r++ {
			c := (r * 37) % cfg.Windows
			t0 := time.Now()
			st, err := colscanOpen(cfg, dirFor(columnar), columnar)
			if err != nil {
				return nil, err
			}
			mnt := core.NewMaintainer(st, PaperConfig(0.02, cfg.Seed))
			cv, err := mnt.CoverFor(c)
			if err == nil {
				bounds, ok := st.WindowBounds(c)
				if !ok {
					err = fmt.Errorf("bench: window %d has no bounds", c)
				} else {
					tt := (float64(c) + 0.5) * cfg.WindowLen
					var g *heatmap.Grid
					g, err = heatmap.FromCover(cv, bounds.Inflate(100), cfg.Cols, cfg.Rows, tt)
					if err == nil {
						grids[columnar] = append(grids[columnar], g)
					}
				}
			}
			lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
			if columnar {
				cs := st.ColumnarStats()
				res.ColBytesRead += cs.BytesRead
				res.BlocksScanned += cs.BlocksScanned
				res.BlocksPruned += cs.BlocksPruned
				res.MmapReads += cs.MmapReads
				res.ReadAtReads += cs.ReadAtReads
			} else {
				res.RowBytesRead += res.CheckpointBytes
			}
			mnt.Close()
			st.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: heatmap round %d (columnar=%v): %w", r, columnar, err)
			}
		}
		if columnar {
			res.ColHeatmapP50Ms = percentile(lat, 0.50)
			res.ColHeatmapP99Ms = percentile(lat, 0.99)
		} else {
			res.RowHeatmapP50Ms = percentile(lat, 0.50)
			res.RowHeatmapP99Ms = percentile(lat, 0.99)
		}
	}
	if len(grids[false]) != len(grids[true]) {
		res.Equivalent = false
	} else {
		for i := range grids[false] {
			a, b := grids[false][i], grids[true][i]
			if a.Region != b.Region || len(a.Values) != len(b.Values) {
				res.Equivalent = false
				break
			}
			for j := range a.Values {
				if math.Float64bits(a.Values[j]) != math.Float64bits(b.Values[j]) {
					res.Equivalent = false
					break
				}
			}
		}
	}
	if res.ColHeatmapP50Ms > 0 {
		res.HeatmapSpeedup = res.RowHeatmapP50Ms / res.ColHeatmapP50Ms
	}

	// Phase 3 — region scans on one lazily recovered store per path:
	// the columnar side streams zone-pruned blocks, the row side
	// filters its eagerly decoded windows. Results are compared as
	// sorted sets (the block scan yields cell order, not append order).
	if cfg.RegionScans > 0 {
		stRow, err := colscanOpen(cfg, rowDir, false)
		if err != nil {
			return nil, err
		}
		stCol, err := colscanOpen(cfg, colDir, true)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		var rowLat, colLat []float64
		for i := 0; i < cfg.RegionScans; i++ {
			c := rng.Intn(cfg.Windows)
			centers := colscanClusters(c, rand.New(rand.NewSource(cfg.Seed+int64(c))))
			ct := centers[rng.Intn(len(centers))]
			region := geo.Rect{
				Min: geo.Point{X: ct.X - 400, Y: ct.Y - 400},
				Max: geo.Point{X: ct.X + 400, Y: ct.Y + 400},
			}
			t0 := time.Now()
			got := stCol.WindowRegion(c, region)
			colLat = append(colLat, float64(time.Since(t0).Microseconds())/1000)
			t0 = time.Now()
			want := stRow.WindowRegion(c, region)
			rowLat = append(rowLat, float64(time.Since(t0).Microseconds())/1000)
			if !sameTupleSet(got, want) {
				res.Equivalent = false
			}
		}
		res.ColRegionScanP50Ms = percentile(colLat, 0.50)
		res.RowRegionScanP50Ms = percentile(rowLat, 0.50)
		cs := stCol.ColumnarStats()
		res.ColBytesRead += cs.BytesRead
		res.BlocksScanned += cs.BlocksScanned
		res.BlocksPruned += cs.BlocksPruned
		res.MmapReads += cs.MmapReads
		res.ReadAtReads += cs.ReadAtReads
		res.RowBytesRead += res.CheckpointBytes
		stRow.Close()
		stCol.Close()
	}
	return res, nil
}

// sameTupleSet compares two batches as multisets of exact bit patterns.
func sameTupleSet(a, b tuple.Batch) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r tuple.Raw) [4]uint64 {
		return [4]uint64{
			math.Float64bits(r.T), math.Float64bits(r.X),
			math.Float64bits(r.Y), math.Float64bits(r.S),
		}
	}
	ka := make([][4]uint64, len(a))
	kb := make([][4]uint64, len(b))
	for i := range a {
		ka[i], kb[i] = key(a[i]), key(b[i])
	}
	less := func(s [][4]uint64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 4; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(ka, less(ka))
	sort.Slice(kb, less(kb))
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// PrintColscan renders the benchmark result as a table.
func PrintColscan(w io.Writer, res *ColscanResult) {
	fmt.Fprintln(w, "# PR-8: columnar checkpoint blocks vs row replay (cold analytical scans)")
	fmt.Fprintf(w, "%d windows x %d tuples, checkpoint %d B, sidecar %d B (%d blocks)\n",
		res.Config.Windows, res.Config.TuplesPerWindow, res.CheckpointBytes, res.SidecarBytes, res.BlocksWritten)
	fmt.Fprintf(w, "%-32s %12.3f\n", "row cover build (ms)", res.RowCoverBuildMs)
	fmt.Fprintf(w, "%-32s %12.3f\n", "columnar cover build (ms)", res.ColCoverBuildMs)
	fmt.Fprintf(w, "%-32s %12.2fx\n", "cover speedup", res.CoverSpeedup)
	fmt.Fprintf(w, "%-32s %12.3f\n", "row heatmap p50 (ms)", res.RowHeatmapP50Ms)
	fmt.Fprintf(w, "%-32s %12.3f\n", "row heatmap p99 (ms)", res.RowHeatmapP99Ms)
	fmt.Fprintf(w, "%-32s %12.3f\n", "columnar heatmap p50 (ms)", res.ColHeatmapP50Ms)
	fmt.Fprintf(w, "%-32s %12.3f\n", "columnar heatmap p99 (ms)", res.ColHeatmapP99Ms)
	fmt.Fprintf(w, "%-32s %12.2fx\n", "heatmap speedup (p50)", res.HeatmapSpeedup)
	fmt.Fprintf(w, "%-32s %12.3f\n", "row region scan p50 (ms)", res.RowRegionScanP50Ms)
	fmt.Fprintf(w, "%-32s %12.3f\n", "columnar region scan p50 (ms)", res.ColRegionScanP50Ms)
	fmt.Fprintf(w, "%-32s %12d\n", "columnar bytes read", res.ColBytesRead)
	fmt.Fprintf(w, "%-32s %12d\n", "row bytes read", res.RowBytesRead)
	fmt.Fprintf(w, "%-32s %12d\n", "blocks scanned", res.BlocksScanned)
	fmt.Fprintf(w, "%-32s %12d\n", "blocks pruned", res.BlocksPruned)
	fmt.Fprintf(w, "%-32s %12d / %d\n", "mmap / pread reads", res.MmapReads, res.ReadAtReads)
	fmt.Fprintf(w, "%-32s %12v\n", "answers equivalent", res.Equivalent)
}
