// Package bench contains the experiment drivers that regenerate every
// figure of the paper's evaluation (§4):
//
//   - Figure 6(a): query-processing efficiency — elapsed time for 5000
//     point queries vs window size H, for Ad-KMN, VP-tree, R-tree, naive.
//   - Figure 6(b): accuracy — NRMSE vs H for Ad-KMN and naive.
//   - Figure 7(a): memory — bytes retained by each method at H = 5000,
//     averaged over 10 independent runs.
//   - Figure 7(b): bandwidth — bytes sent/received and total time for a
//     100-tuple continuous query, baseline vs model-cache.
//
// Plus the ablation experiments DESIGN.md calls out. Each driver returns
// typed rows; Print* functions render the same tables/series the paper
// plots.
package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/query"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/tuple"
)

// PaperConfig is the Ad-KMN configuration used throughout the evaluation
// reproduction: τn as given, per-region linear regression over time
// (linear-t), and a 6-tuple minimum region support. The model-family
// ablation (RunAblationModelFamily) documents why linear-t: spatial-slope
// families fit corridor-constrained samples better in-sample but
// extrapolate worse at query positions a jitter off the routes.
func PaperConfig(tau float64, seed int64) core.Config {
	return core.Config{
		ErrThreshold:    tau,
		Features:        regress.LinearT,
		MinRegionTuples: 6,
		Cluster:         kmeans.Config{Seed: seed},
	}
}

// Dataset bundles the synthetic lausanne-data with its ground-truth field.
type Dataset struct {
	// Data is the community-sensed raw tuple stream, time sorted.
	Data tuple.Batch
	// Field is the ground truth the data sampled (with noise).
	Field sim.Field
	// Cfg is the deployment that generated it.
	Cfg sim.Config
}

// LoadDataset generates the synthetic deployment. durationSeconds trims
// the default one-month deployment for fast runs; pass 0 for the full
// month (172,800 scheduled samples).
func LoadDataset(seed int64, durationSeconds float64) (*Dataset, error) {
	cfg := sim.DefaultLausanne(seed)
	if durationSeconds > 0 {
		cfg.Duration = durationSeconds
	}
	data, err := sim.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, errors.New("bench: generated empty dataset")
	}
	return &Dataset{Data: data, Field: cfg.Field, Cfg: cfg}, nil
}

// WindowOfSize returns a window of exactly h consecutive raw tuples
// starting at tuple offset start — the paper's H-raw-tuple windows (§4.1
// uses "a varying window size H from 40 to 240 raw tuples").
func (d *Dataset) WindowOfSize(start, h int) (tuple.Batch, error) {
	if h <= 0 {
		return nil, fmt.Errorf("bench: window size %d, want > 0", h)
	}
	if start < 0 || start+h > len(d.Data) {
		return nil, fmt.Errorf("bench: window [%d,%d) outside dataset of %d tuples",
			start, start+h, len(d.Data))
	}
	// Clone so the window owns exactly its own tuples: the memory
	// experiment sizes windows, and a sub-slice would drag the whole
	// dataset's backing array into the measurement.
	return d.Data[start : start+h].Clone(), nil
}

// Workload is a set of point queries with ground-truth answers.
type Workload struct {
	Queries []query.Q
	Truth   []float64
}

// MakeWorkload samples n point queries against window w: positions are
// drawn near the window's tuples (a Gaussian jitter of sigma meters keeps
// them in the sensed corridors, mimicking users who query where buses
// drive), times are uniform over the window's time span. Ground truth
// comes from the dataset's field.
func (d *Dataset) MakeWorkload(w tuple.Batch, n int, sigma float64, seed int64) (*Workload, error) {
	if len(w) == 0 {
		return nil, errors.New("bench: empty window")
	}
	if n <= 0 {
		return nil, fmt.Errorf("bench: workload size %d, want > 0", n)
	}
	rng := rand.New(rand.NewSource(seed))
	tMin, tMax, _ := w.TimeSpan()
	wl := &Workload{
		Queries: make([]query.Q, n),
		Truth:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		anchor := w[rng.Intn(len(w))]
		q := query.Q{
			T: tMin + rng.Float64()*(tMax-tMin),
			X: anchor.X + rng.NormFloat64()*sigma,
			Y: anchor.Y + rng.NormFloat64()*sigma,
		}
		wl.Queries[i] = q
		wl.Truth[i] = d.Field.TrueValue(q.T, q.X, q.Y)
	}
	return wl, nil
}

// Method identifies a query-processing method in results.
type Method string

// The four §2.2 methods.
const (
	MethodAdKMN  Method = "ad-kmn"
	MethodNaive  Method = "naive"
	MethodRTree  Method = "r-tree"
	MethodVPTree Method = "vp-tree"
)

// AllMethods lists the methods in the paper's plotting order.
var AllMethods = []Method{MethodAdKMN, MethodVPTree, MethodRTree, MethodNaive}

// BuildProcessor constructs the processor for a method over window w. It
// is exported for the root-level figure benchmarks.
func BuildProcessor(m Method, w tuple.Batch, radius, tau float64, seed int64) (query.Processor, error) {
	switch m {
	case MethodNaive:
		return query.NewNaive(w, radius)
	case MethodRTree:
		return query.NewRTree(w, radius)
	case MethodVPTree:
		return query.NewVPTree(w, radius)
	case MethodAdKMN:
		cv, err := core.BuildCover(w, 0, 1e18, PaperConfig(tau, seed))
		if err != nil {
			return nil, err
		}
		return query.NewCover(cv)
	default:
		return nil, fmt.Errorf("bench: unknown method %q", m)
	}
}

// timeQueries runs all workload queries through p and returns the elapsed
// wall time and the answers (NaN-free; failed queries fall back to the
// window mean so accuracy metrics stay defined, and are counted).
func timeQueries(p query.Processor, wl *Workload, w tuple.Batch) (time.Duration, []float64, int) {
	fallback, _ := w.MeanValue()
	est := make([]float64, len(wl.Queries))
	misses := 0
	start := time.Now()
	for i, q := range wl.Queries {
		v, err := p.Interpolate(q)
		if err != nil {
			v = fallback
			misses++
		}
		est[i] = v
	}
	return time.Since(start), est, misses
}
