package bench

// Live-rebalance benchmark (PR 10, BENCH_10.json): a closed-loop
// replicated cluster serves queries through the sharded client while a
// fourth node joins — announce, bootstrap, epoch commit, tail pull —
// and the harness measures what the transition costs the readers: the
// query latency distribution and the error count inside the join
// window. Membership traffic (ring pushes and shard-transfer pulls) is
// slowed by a configurable stall so the join spans many client
// queries, the way a real bootstrap over a network does, without
// slowing the query path itself. The result is self-validating: zero
// query errors during the join, the epoch advanced exactly once on
// every member including the joiner, the joiner owns shards, and every
// sampled answer after the rebalance is byte-equal to the answer
// before it.

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// RebalanceConfig parameterises the live-join benchmark.
type RebalanceConfig struct {
	// Nodes is the starting cluster size; one more joins live.
	Nodes int `json:"nodes"`
	// Replicas is the ring replication factor.
	Replicas int `json:"replicas"`
	// CellsPerSide is the shard grid resolution (CellsPerSide^2 cells).
	CellsPerSide int `json:"cells_per_side"`
	// Queries is the closed-loop query count of the steady phase (the
	// join window runs as many as fit).
	Queries int `json:"queries"`
	// JoinStallMS delays each membership exchange (join announce, ring
	// push, shard-transfer chunk) so the bootstrap spans the query load.
	JoinStallMS int `json:"join_stall_ms"`
	// ConvergeTimeoutS bounds the wait for replica mirrors before the
	// measured run starts.
	ConvergeTimeoutS int `json:"converge_timeout_s"`
	// Seed drives the workload shuffle and the engines' clustering.
	Seed int64 `json:"seed"`
}

// DefaultRebalanceConfig is the committed BENCH_10.json workload:
// small enough for a CI smoke run, stalled enough that the join window
// holds a meaningful latency sample.
func DefaultRebalanceConfig() RebalanceConfig {
	return RebalanceConfig{
		Nodes:            3,
		Replicas:         2,
		CellsPerSide:     8,
		Queries:          256,
		JoinStallMS:      4,
		ConvergeTimeoutS: 60,
		Seed:             1,
	}
}

// RebalanceResult is the BENCH_10.json schema.
type RebalanceResult struct {
	Config RebalanceConfig `json:"config"`

	// Loaded is the tuple count ingested before the measured run.
	Loaded int `json:"loaded_tuples"`
	// EpochBefore/EpochAfter bracket the transition.
	EpochBefore uint64 `json:"epoch_before"`
	EpochAfter  uint64 `json:"epoch_after"`
	// JoinerShards is how many cells the new node owns after the commit.
	JoinerShards int `json:"joiner_shards"`
	// JoinMS is the wall time of the announce-to-committed join.
	JoinMS float64 `json:"join_ms"`

	// Steady phase: closed-loop latency before the join starts.
	SteadyQueries int     `json:"steady_queries"`
	SteadyP50Ms   float64 `json:"steady_p50_ms"`
	SteadyP99Ms   float64 `json:"steady_p99_ms"`

	// Join window: every query issued while the join was in flight.
	JoinQueries int     `json:"join_queries"`
	JoinErrors  int     `json:"join_errors"`
	JoinP50Ms   float64 `json:"join_p50_ms"`
	JoinP99Ms   float64 `json:"join_p99_ms"`

	// Post-join: the same samples re-asked through the client must
	// answer byte-equal to the pre-join owners' answers.
	PostQueries    int `json:"post_queries"`
	PostMismatches int `json:"post_mismatches"`

	// Acceptance booleans (re-checked by the CLI after writing the
	// file).
	ZeroErrorJoin     bool `json:"zero_error_join"`
	EpochAdvancedOnce bool `json:"epoch_advanced_once"`
	JoinerOwnsShards  bool `json:"joiner_owns_shards"`
	AnswersPreserved  bool `json:"answers_preserved"`
}

// rebalCluster is an in-process replicated cluster that can grow: real
// engines, real ring, real binary codec on every hop, with a stall
// injected in front of membership frames so a join has a measurable
// window.
type rebalCluster struct {
	mu      sync.Mutex
	engines []*server.Engine
	nodes   []*cluster.Node
	addrs   []string
	seed    int64
	stallNS atomic.Int64
}

type rebalTransport struct {
	c  *rebalCluster
	to int
}

func (t *rebalTransport) Exchange(req wire.Message) (wire.Message, error) {
	switch req.(type) {
	case wire.JoinRequest, wire.RingUpdate, wire.ShardTransfer, wire.Promote:
		if d := t.c.stallNS.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
	}
	reqB, err := wire.Binary.Encode(req)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Binary.Decode(reqB)
	if err != nil {
		return nil, err
	}
	t.c.mu.Lock()
	node := t.c.nodes[t.to]
	t.c.mu.Unlock()
	resp := node.HandleMessage(decoded)
	respB, err := wire.Binary.Encode(resp)
	if err != nil {
		return nil, err
	}
	return wire.Binary.Decode(respB)
}

func (c *rebalCluster) dialer() cluster.Dialer {
	return func(addr string) (cluster.Transport, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, a := range c.addrs {
			if a == addr {
				return &rebalTransport{c: c, to: i}, nil
			}
		}
		return nil, fmt.Errorf("unknown address %q", addr)
	}
}

// addNode builds an engine+node pair serving ring as member self.
func (c *rebalCluster) addNode(ring *cluster.Ring, self int) error {
	engine, err := newFailEngine(c.seed)
	if err != nil {
		return err
	}
	mirror := func() cluster.Handler {
		e, err := newFailEngine(c.seed)
		if err != nil {
			panic(fmt.Sprintf("bench: mirror engine: %v", err))
		}
		return e
	}
	// Explicit transports cover the boot-time members; Dial covers
	// nodes that join later.
	transports := make([]cluster.Transport, ring.Nodes())
	for j := range transports {
		if j != self {
			transports[j] = &rebalTransport{c: c, to: j}
		}
	}
	node, err := cluster.NewNode(cluster.NodeConfig{
		Ring:        ring,
		Self:        self,
		Local:       engine,
		Transports:  transports,
		Dial:        c.dialer(),
		Default:     tuple.CO2,
		Replication: cluster.ReplicationConfig{NewMirror: mirror},
	})
	if err != nil {
		engine.Close()
		return err
	}
	c.mu.Lock()
	c.engines = append(c.engines, engine)
	c.nodes = append(c.nodes, node)
	c.mu.Unlock()
	return nil
}

func newRebalCluster(cfg RebalanceConfig) (*rebalCluster, error) {
	cells, err := cluster.Cells(failRegion, cfg.CellsPerSide, 1)
	if err != nil {
		return nil, err
	}
	addrs := make([]string, cfg.Nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%d:8081", i)
	}
	// Epoch 1, not 0: frames routed at epoch 0 are legacy (epoch-
	// agnostic) and are never fenced, so a measured transition must
	// start from a real epoch.
	ring, err := cluster.NewRing(cluster.Desc{Nodes: addrs, Cells: cells, Replicas: cfg.Replicas, Epoch: 1})
	if err != nil {
		return nil, err
	}
	c := &rebalCluster{addrs: addrs, seed: cfg.Seed}
	for i := 0; i < cfg.Nodes; i++ {
		if err := c.addNode(ring, i); err != nil {
			c.close()
			return nil, err
		}
	}
	return c, nil
}

func (c *rebalCluster) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		n.Close()
	}
	for _, e := range c.engines {
		e.Close()
	}
}

func (c *rebalCluster) node(i int) *cluster.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// waitConverged polls until every sampled shard's replicas answer
// exactly the owner engine's value (same contract as the failover
// bench, against this cluster's growable node set).
func (c *rebalCluster) waitConverged(ring *cluster.Ring, reqs []query.Request, timeout time.Duration) error {
	//ctxcheck:allow the benchmark run is its own root; the poll is deadline-bounded
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	for {
		lag := ""
	check:
		for _, req := range reqs {
			pt := geo.Point{X: req.X, Y: req.Y}
			owner := ring.Owner(tuple.CO2, pt)
			c.mu.Lock()
			ownerEngine := c.engines[owner]
			c.mu.Unlock()
			want, err := ownerEngine.Query(ctx, req)
			if err != nil {
				return fmt.Errorf("owner %d query: %w", owner, err)
			}
			k := cluster.ShardKey{Pollutant: tuple.CO2, Cell: ring.CellOf(pt)}
			for _, rep := range ring.ReplicasFor(k)[1:] {
				tr := &rebalTransport{c: c, to: rep}
				resp, err := tr.Exchange(wire.ReplicaRead{Origin: uint16(owner),
					Inner: wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant}})
				if err != nil {
					return err
				}
				if er, isErr := resp.(wire.ErrorResponse); isErr && strings.HasPrefix(er.Msg, "replica:") {
					lag = fmt.Sprintf("replica %d has no usable mirror of %d yet", rep, owner)
					break check
				}
				qr, isQ := resp.(wire.QueryResponse)
				if !isQ || qr.Value != want {
					lag = fmt.Sprintf("replica %d of %d answers %#v, owner answers %v", rep, owner, resp, want)
					break check
				}
			}
		}
		if lag == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never converged: %s", lag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RunRebalance runs the benchmark and returns the self-validated
// result.
func RunRebalance(cfg RebalanceConfig) (*RebalanceResult, error) {
	res := &RebalanceResult{Config: cfg}
	c, err := newRebalCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.close()

	data := failData()
	resp := c.node(0).HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: data})
	if ir, ok := resp.(wire.IngestResponse); !ok || int(ir.Ingested) != len(data) {
		return nil, fmt.Errorf("seed ingest failed: %#v", resp)
	}
	res.Loaded = len(data)

	baseRing := c.node(0).Ring()
	res.EpochBefore = baseRing.Epoch()
	var samples []query.Request
	for i := 0; i < len(data); i += 7 {
		samples = append(samples, query.Request{T: failQueryT, X: data[i].X, Y: data[i].Y, Pollutant: tuple.CO2})
	}
	if err := c.waitConverged(baseRing, samples, time.Duration(cfg.ConvergeTimeoutS)*time.Second); err != nil {
		return nil, err
	}

	// The answers the cluster gives before the rebalance are the
	// contract: a join moves shards, it must not move values. The
	// record uses the order-insensitive naive interpolation — a handoff
	// replays the origin's replication log, which may reorder tuples
	// relative to the original upload, and the adaptive cover is
	// insertion-order sensitive while holding exactly the same data.
	//ctxcheck:allow the benchmark run is its own root; bounded by the sample count
	ctx := context.Background()
	naive := query.Options{Kind: query.KindNaive, Radius: 60}
	want := make([]float64, len(samples))
	for i, req := range samples {
		owner := baseRing.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		c.mu.Lock()
		ownerEngine := c.engines[owner]
		c.mu.Unlock()
		v, err := ownerEngine.QueryOpts(ctx, req, naive)
		if err != nil {
			return nil, err
		}
		want[i] = v
	}

	sc := client.NewSharded(&rebalTransport{c: c, to: 0}, func(addr string) (client.Transport, error) {
		tr, err := c.dialer()(addr)
		if err != nil {
			return nil, err
		}
		return tr, nil
	})
	defer sc.Close()

	ask := func(req query.Request) (float64, error) {
		out, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
		if err != nil {
			return 0, err
		}
		qr, ok := out.(wire.QueryResponse)
		if !ok {
			return 0, fmt.Errorf("query answered %#v", out)
		}
		return qr.Value, nil
	}

	// Steady phase: the latency baseline on the pre-join cluster.
	rng := rand.New(rand.NewSource(cfg.Seed))
	steady := make([]float64, 0, cfg.Queries)
	for q := 0; q < cfg.Queries; q++ {
		req := samples[rng.Intn(len(samples))]
		start := time.Now()
		if _, err := ask(req); err != nil {
			return nil, fmt.Errorf("steady-phase query: %w", err)
		}
		steady = append(steady, float64(time.Since(start).Microseconds())/1000)
	}
	res.SteadyQueries = len(steady)
	res.SteadyP50Ms = percentile(steady, 0.50)
	res.SteadyP99Ms = percentile(steady, 0.99)

	// Join phase: announce and bootstrap the fourth node while the
	// closed loop keeps asking. Membership frames are stalled so the
	// window spans many queries.
	c.stallNS.Store(int64(time.Duration(cfg.JoinStallMS) * time.Millisecond))
	joinerAddr := fmt.Sprintf("node-%d:8081", cfg.Nodes)
	pending, err := cluster.JoinCluster(&rebalTransport{c: c, to: 0}, joinerAddr)
	if err != nil {
		return nil, fmt.Errorf("join announce: %w", err)
	}
	c.mu.Lock()
	c.addrs = append(c.addrs, joinerAddr)
	c.mu.Unlock()
	if err := c.addNode(pending, cfg.Nodes); err != nil {
		return nil, fmt.Errorf("joiner node: %w", err)
	}
	joiner := c.node(cfg.Nodes)

	joinStart := time.Now()
	joinDone := make(chan error, 1) //bounded: exactly one CompleteJoin result; capacity 1 lets the goroutine exit unreceived
	go func() { joinDone <- joiner.CompleteJoin(ctx) }()

	joinLat := make([]float64, 0, cfg.Queries)
	joining := true
	for joining {
		select {
		case err := <-joinDone:
			if err != nil {
				return nil, fmt.Errorf("complete join: %w", err)
			}
			joining = false
		default:
			req := samples[rng.Intn(len(samples))]
			start := time.Now()
			if _, err := ask(req); err != nil {
				res.JoinErrors++
			}
			joinLat = append(joinLat, float64(time.Since(start).Microseconds())/1000)
		}
	}
	res.JoinMS = float64(time.Since(joinStart).Microseconds()) / 1000
	c.stallNS.Store(0)
	res.JoinQueries = len(joinLat)
	res.JoinP50Ms = percentile(joinLat, 0.50)
	res.JoinP99Ms = percentile(joinLat, 0.99)

	// Post-join: epochs, placement, and answers.
	res.EpochAfter = joiner.Ring().Epoch()
	epochsAgree := true
	c.mu.Lock()
	nodes := append([]*cluster.Node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		if n.Ring().Epoch() != res.EpochAfter {
			epochsAgree = false
		}
	}
	res.JoinerShards = len(joiner.Ring().OwnedCells(cfg.Nodes, tuple.CO2))
	// Two post-join checks per sample: the client's routed answer must
	// equal the current owner engine's (routing converged), and the
	// current owner's naive answer must equal the pre-join record (no
	// tuple was lost or invented by the handoff).
	joined := joiner.Ring()
	for i, req := range samples {
		res.PostQueries++
		owner := joined.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		c.mu.Lock()
		ownerEngine := c.engines[owner]
		c.mu.Unlock()
		direct, err := ownerEngine.Query(ctx, req)
		if err != nil {
			res.PostMismatches++
			continue
		}
		if v, err := ask(req); err != nil || v != direct {
			res.PostMismatches++
			continue
		}
		if nv, err := ownerEngine.QueryOpts(ctx, req, naive); err != nil || nv != want[i] {
			res.PostMismatches++
		}
	}

	res.ZeroErrorJoin = res.JoinErrors == 0 && res.JoinQueries > 0
	res.EpochAdvancedOnce = epochsAgree && res.EpochAfter == res.EpochBefore+1
	res.JoinerOwnsShards = res.JoinerShards > 0
	res.AnswersPreserved = res.PostMismatches == 0
	return res, nil
}

// PrintRebalance renders the benchmark result as a table.
func PrintRebalance(w io.Writer, res *RebalanceResult) {
	fmt.Fprintln(w, "# PR-10: live node join under query load (closed loop)")
	fmt.Fprintf(w, "%d+1 nodes, R=%d, %d tuples, %d steady queries, membership stall +%dms\n",
		res.Config.Nodes, res.Config.Replicas, res.Loaded, res.Config.Queries, res.Config.JoinStallMS)
	fmt.Fprintf(w, "%-28s %12d -> %d\n", "membership epoch", res.EpochBefore, res.EpochAfter)
	fmt.Fprintf(w, "%-28s %12d\n", "joiner shards", res.JoinerShards)
	fmt.Fprintf(w, "%-28s %12.3f\n", "join wall time (ms)", res.JoinMS)
	fmt.Fprintf(w, "%-28s %12.3f\n", "steady p50 (ms)", res.SteadyP50Ms)
	fmt.Fprintf(w, "%-28s %12.3f\n", "steady p99 (ms)", res.SteadyP99Ms)
	fmt.Fprintf(w, "%-28s %12d\n", "queries during join", res.JoinQueries)
	fmt.Fprintf(w, "%-28s %12d\n", "errors during join", res.JoinErrors)
	fmt.Fprintf(w, "%-28s %12.3f\n", "join-window p50 (ms)", res.JoinP50Ms)
	fmt.Fprintf(w, "%-28s %12.3f\n", "join-window p99 (ms)", res.JoinP99Ms)
	fmt.Fprintf(w, "%-28s %12d\n", "post-join sample queries", res.PostQueries)
	fmt.Fprintf(w, "%-28s %12d\n", "post-join mismatches", res.PostMismatches)
	fmt.Fprintf(w, "%-28s %12v\n", "zero-error join", res.ZeroErrorJoin)
	fmt.Fprintf(w, "%-28s %12v\n", "epoch advanced once", res.EpochAdvancedOnce)
	fmt.Fprintf(w, "%-28s %12v\n", "joiner owns shards", res.JoinerOwnsShards)
	fmt.Fprintf(w, "%-28s %12v\n", "answers preserved", res.AnswersPreserved)
}
