package bench

import (
	"fmt"
	"io"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/memsize"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// Fig7aConfig parameterizes the memory experiment. Paper settings: a
// larger window of H = 5000 raw tuples, 10 independent runs averaged,
// measuring (a) the complete point set for naive, (b) the index structures
// for R-tree and VP-tree, and (c) the models for Ad-KMN.
type Fig7aConfig struct {
	H      int
	Runs   int
	Radius float64
	Tau    float64
	Seed   int64
}

// DefaultFig7aConfig returns the paper's settings.
func DefaultFig7aConfig() Fig7aConfig {
	return Fig7aConfig{H: 5000, Runs: 10, Radius: 1000, Tau: 0.02, Seed: 1}
}

// Fig7aResult holds mean retained bytes per method.
type Fig7aResult struct {
	H     int
	Runs  int
	Bytes map[Method]float64
	// CoverSizes records Ad-KMN's model count per run, for context.
	CoverSizes []int
}

// RunFig7a measures the deep memory footprint of each method's data
// structure over cfg.Runs windows drawn from different dataset offsets.
func RunFig7a(d *Dataset, cfg Fig7aConfig) (*Fig7aResult, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("bench: runs %d, want > 0", cfg.Runs)
	}
	if cfg.H > len(d.Data) {
		return nil, fmt.Errorf("bench: H=%d exceeds dataset size %d", cfg.H, len(d.Data))
	}
	res := &Fig7aResult{H: cfg.H, Runs: cfg.Runs, Bytes: make(map[Method]float64)}
	stride := (len(d.Data) - cfg.H) / cfg.Runs
	if stride < 1 {
		stride = 1
	}
	for run := 0; run < cfg.Runs; run++ {
		start := (run * stride) % (len(d.Data) - cfg.H + 1)
		w, err := d.WindowOfSize(start, cfg.H)
		if err != nil {
			return nil, err
		}

		// Each method is charged the full state it must retain to answer
		// queries: the naive method the complete set of points; the index
		// methods the points plus the index structure; the model cover
		// only centroids and coefficients. (The paper measured the Python
		// objects with Pympler; this is the Go equivalent.)
		res.Bytes[MethodNaive] += float64(memsize.Of(w))

		rt, err := query.NewRTree(w, cfg.Radius)
		if err != nil {
			return nil, err
		}
		res.Bytes[MethodRTree] += float64(memsize.Of(rt))

		vp, err := query.NewVPTree(w, cfg.Radius)
		if err != nil {
			return nil, err
		}
		res.Bytes[MethodVPTree] += float64(memsize.Of(vp))

		cv, err := core.BuildCover(w, 0, 1e18, PaperConfig(cfg.Tau, cfg.Seed+int64(run)))
		if err != nil {
			return nil, err
		}
		res.Bytes[MethodAdKMN] += float64(memsize.Of(cv))
		res.CoverSizes = append(res.CoverSizes, cv.Size())
	}
	for m := range res.Bytes {
		res.Bytes[m] /= float64(cfg.Runs)
	}
	return res, nil
}

// Ratio returns how many times more memory method m uses than Ad-KMN.
func (r *Fig7aResult) Ratio(m Method) float64 {
	ad := r.Bytes[MethodAdKMN]
	if ad <= 0 {
		return 0
	}
	return r.Bytes[m] / ad
}

// PrintFig7a writes the memory comparison (Figure 7a, log-scale in the
// paper).
func PrintFig7a(w io.Writer, r *Fig7aResult) {
	fmt.Fprintf(w, "# Figure 7(a): memory at H=%d, mean of %d runs\n", r.H, r.Runs)
	fmt.Fprintf(w, "%-10s %14s %12s\n", "method", "kilobytes", "vs ad-kmn")
	for _, m := range []Method{MethodAdKMN, MethodNaive, MethodRTree, MethodVPTree} {
		fmt.Fprintf(w, "%-10s %14.2f %11.1fx\n", m, r.Bytes[m]/1024, r.Ratio(m))
	}
}

// Fig7bConfig parameterizes the bandwidth experiment. Paper settings: a
// continuous query of 100 query tuples; measure total bytes transmitted
// and received by the mobile device and total time to complete the query.
type Fig7bConfig struct {
	// NumQueries is the continuous query length (paper: 100).
	NumQueries int
	// QueryIntervalSeconds is the uniform |t_{l+1} − t_l| spacing of the
	// mobile object's updates.
	QueryIntervalSeconds float64
	// WindowSeconds is the store's H in stream time.
	WindowSeconds float64
	// Link is the simulated bearer.
	Link netsim.LinkConfig
	// Codec is the wire codec.
	Codec wire.Codec
	// Tau is τn.
	Tau  float64
	Seed int64
}

// DefaultFig7bConfig returns the paper's settings over simulated GPRS with
// the binary codec. The window spans the whole continuous query, matching
// the paper's setup where the model cover stays valid across the 100
// tuples (the savings come precisely from not re-contacting the server).
func DefaultFig7bConfig() Fig7bConfig {
	return Fig7bConfig{
		NumQueries:           100,
		QueryIntervalSeconds: 60,
		WindowSeconds:        4 * 3600,
		Link:                 netsim.GPRS(),
		Codec:                wire.Binary,
		Tau:                  0.02,
		Seed:                 1,
	}
}

// Fig7bArm is one strategy's measurements.
type Fig7bArm struct {
	Strategy      string
	SentBytes     int64
	ReceivedBytes int64
	TotalSeconds  float64
	Exchanges     int64
}

// Fig7bResult compares the two arms.
type Fig7bResult struct {
	Baseline   Fig7bArm
	ModelCache Fig7bArm
}

// SentRatio returns baseline sent bytes / model-cache sent bytes.
func (r *Fig7bResult) SentRatio() float64 {
	if r.ModelCache.SentBytes == 0 {
		return 0
	}
	return float64(r.Baseline.SentBytes) / float64(r.ModelCache.SentBytes)
}

// ReceivedRatio returns baseline received / model-cache received.
func (r *Fig7bResult) ReceivedRatio() float64 {
	if r.ModelCache.ReceivedBytes == 0 {
		return 0
	}
	return float64(r.Baseline.ReceivedBytes) / float64(r.ModelCache.ReceivedBytes)
}

// TimeRatio returns baseline time / model-cache time.
func (r *Fig7bResult) TimeRatio() float64 {
	if r.ModelCache.TotalSeconds == 0 {
		return 0
	}
	return r.Baseline.TotalSeconds / r.ModelCache.TotalSeconds
}

// RunFig7b runs the bandwidth experiment: the same mobile trajectory and
// query stream through both strategies, over fresh identical links.
func RunFig7b(d *Dataset, cfg Fig7bConfig) (*Fig7bResult, error) {
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("bench: NumQueries %d, want > 0", cfg.NumQueries)
	}
	// Stand up a server over the dataset.
	st, err := store.Open(store.Config{WindowLength: cfg.WindowSeconds})
	if err != nil {
		return nil, err
	}
	if err := st.Append(d.Data); err != nil {
		return nil, err
	}
	eng := server.NewEngine(st, PaperConfig(cfg.Tau, cfg.Seed))
	defer eng.Close() // stop the pipeline/scheduler goroutines per run

	// The mobile object rides along the first bus route, one query per
	// interval, starting inside the second window so models exist.
	route := d.Cfg.Vehicles[0].Route
	t0 := cfg.WindowSeconds
	qs := make([]query.Request, cfg.NumQueries)
	for i := range qs {
		t := t0 + float64(i)*cfg.QueryIntervalSeconds
		pos := route.AtLoop(5.0 * (t - t0)) // walking/driving pace 5 m/s
		qs[i] = query.Request{T: t, X: pos.X, Y: pos.Y}
	}

	runArm := func(mk func(client.Transport) client.Strategy) (Fig7bArm, error) {
		link, err := netsim.NewLink(cfg.Link)
		if err != nil {
			return Fig7bArm{}, err
		}
		tr := &client.LinkTransport{Link: link, Codec: cfg.Codec, Handler: eng}
		s := mk(tr)
		if _, err := client.RunContinuous(s, qs); err != nil {
			return Fig7bArm{}, err
		}
		stats := link.Stats()
		return Fig7bArm{
			Strategy:      s.Name(),
			SentBytes:     stats.SentBytes,
			ReceivedBytes: stats.ReceivedBytes,
			TotalSeconds:  stats.SimSeconds,
			Exchanges:     stats.Exchanges,
		}, nil
	}

	base, err := runArm(func(t client.Transport) client.Strategy { return client.NewBaseline(t) })
	if err != nil {
		return nil, fmt.Errorf("bench: baseline arm: %w", err)
	}
	mc, err := runArm(func(t client.Transport) client.Strategy { return client.NewModelCache(t) })
	if err != nil {
		return nil, fmt.Errorf("bench: model-cache arm: %w", err)
	}
	return &Fig7bResult{Baseline: base, ModelCache: mc}, nil
}

// PrintFig7b writes the bandwidth comparison (Figure 7b, log-scale in the
// paper, annotated with the ratios).
func PrintFig7b(w io.Writer, r *Fig7bResult) {
	fmt.Fprintln(w, "# Figure 7(b): bandwidth optimization, 100-tuple continuous query")
	fmt.Fprintf(w, "%-14s %14s %14s %14s %10s\n",
		"strategy", "sent (kb)", "received (kb)", "time (sec)", "exchanges")
	for _, arm := range []Fig7bArm{r.Baseline, r.ModelCache} {
		fmt.Fprintf(w, "%-14s %14.2f %14.2f %14.2f %10d\n",
			arm.Strategy,
			float64(arm.SentBytes)/1024,
			float64(arm.ReceivedBytes)/1024,
			arm.TotalSeconds,
			arm.Exchanges)
	}
	fmt.Fprintf(w, "ratios: sent %.0fx, received %.0fx, time %.0fx (paper: 113x, 31x, 100x)\n",
		r.SentRatio(), r.ReceivedRatio(), r.TimeRatio())
}
