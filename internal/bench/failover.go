package bench

// Failover / hedged-read benchmark (PR 9, BENCH_9.json): a closed-loop
// 3-node replicated cluster in one process. Phase one kills a node
// under mixed load and requires ZERO failed queries and ZERO answer
// mismatches on the dead node's shards — the availability contract the
// replicas buy. Phase two injects a fixed delay in front of one
// primary and compares the sharded client's query latency with hedging
// off and on; the hedge probe racing the replica must pull p99 back
// down. The result is self-validating: the booleans it carries are the
// acceptance criteria.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/kmeans"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// FailoverConfig parameterises the failover/hedging benchmark.
type FailoverConfig struct {
	// Nodes is the cluster size (fixed at 3: one victim, one replica
	// holder, one router-side survivor).
	Nodes int `json:"nodes"`
	// Replicas is the ring replication factor.
	Replicas int `json:"replicas"`
	// CellsPerSide is the shard grid resolution (CellsPerSide^2 cells).
	CellsPerSide int `json:"cells_per_side"`
	// Queries is the closed-loop query count per phase.
	Queries int `json:"queries"`
	// SlowPrimaryMS is the delay injected in front of the slow primary
	// during the hedging phase, in milliseconds.
	SlowPrimaryMS int `json:"slow_primary_ms"`
	// HedgeFloorMS bounds the hedge delay from below, in milliseconds.
	HedgeFloorMS int `json:"hedge_floor_ms"`
	// ConvergeTimeoutS bounds the wait for replica mirrors to reach
	// byte-equality with their primaries before measuring.
	ConvergeTimeoutS int `json:"converge_timeout_s"`
	// Seed drives the workload shuffle and the engines' clustering.
	Seed int64 `json:"seed"`
}

// DefaultFailoverConfig is the committed BENCH_9.json workload: small
// enough for a CI smoke run, large enough that every node's shards are
// exercised in both phases.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Nodes:            3,
		Replicas:         2,
		CellsPerSide:     8,
		Queries:          256,
		SlowPrimaryMS:    8,
		HedgeFloorMS:     1,
		ConvergeTimeoutS: 60,
		Seed:             1,
	}
}

// FailoverResult is the BENCH_9.json schema.
type FailoverResult struct {
	Config FailoverConfig `json:"config"`

	// Loaded is the tuple count ingested before the kill.
	Loaded int `json:"loaded_tuples"`
	// Victim is the node killed in the failover phase.
	Victim int `json:"victim_node"`

	// Failover phase: every query must succeed and every answer on the
	// victim's shards must be byte-equal to the answer its engine gave
	// before dying.
	QueriesAfterKill   int   `json:"queries_after_kill"`
	VictimShardQueries int   `json:"victim_shard_queries"`
	FailedAfterKill    int   `json:"failed_after_kill"`
	Mismatches         int   `json:"mismatches"`
	IngestsAfterKill   int   `json:"ingests_after_kill"`
	IngestFailures     int   `json:"ingest_failures"`
	ClientFailovers    int64 `json:"client_failovers"`

	// Hedging phase: closed-loop latency against a slow primary, hedging
	// off then on.
	UnhedgedP50Ms float64 `json:"unhedged_p50_ms"`
	UnhedgedP99Ms float64 `json:"unhedged_p99_ms"`
	HedgedP50Ms   float64 `json:"hedged_p50_ms"`
	HedgedP99Ms   float64 `json:"hedged_p99_ms"`
	HedgeProbes   int64   `json:"hedge_probes"`
	HedgeWins     int64   `json:"hedge_wins"`

	// Acceptance booleans (re-checked by the CLI after writing the
	// file): zero 502s on the dead node's shards, byte-equal replica
	// answers, and a hedged p99 no worse than the unhedged one.
	ZeroErrorFailover bool `json:"zero_error_failover"`
	ByteEqualReplicas bool `json:"byte_equal_replicas"`
	HedgeP99Improved  bool `json:"hedged_p99_le_unhedged"`
}

// failCluster is an in-process replicated cluster: real engines, real
// ring, real binary codec on every hop, with a per-node kill switch and
// injectable latency standing in for a dead or slow network peer.
type failCluster struct {
	ring    *cluster.Ring
	engines []*server.Engine
	nodes   []*cluster.Node
	dead    []atomic.Bool
	delayNS []atomic.Int64
}

type failTransport struct {
	c  *failCluster
	to int
}

func (t *failTransport) Exchange(req wire.Message) (wire.Message, error) {
	if d := t.c.delayNS[t.to].Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if t.c.dead[t.to].Load() {
		return nil, fmt.Errorf("node %d is down", t.to)
	}
	reqB, err := wire.Binary.Encode(req)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Binary.Decode(reqB)
	if err != nil {
		return nil, err
	}
	resp := t.c.nodes[t.to].HandleMessage(decoded)
	respB, err := wire.Binary.Encode(resp)
	if err != nil {
		return nil, err
	}
	return wire.Binary.Decode(respB)
}

const (
	failWindowLen = 3600.0
	failQueryT    = 1800.0
)

var failRegion = geo.Rect{Min: geo.Point{X: -2000, Y: -2000}, Max: geo.Point{X: 2000, Y: 2000}}

func newFailEngine(seed int64) (*server.Engine, error) {
	st := store.MustOpenMemory(failWindowLen)
	return server.NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: seed}})
}

func newFailCluster(cfg FailoverConfig) (*failCluster, error) {
	cells, err := cluster.Cells(failRegion, cfg.CellsPerSide, 1)
	if err != nil {
		return nil, err
	}
	addrs := make([]string, cfg.Nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%d:8081", i)
	}
	ring, err := cluster.NewRing(cluster.Desc{Nodes: addrs, Cells: cells, Replicas: cfg.Replicas})
	if err != nil {
		return nil, err
	}
	c := &failCluster{
		ring:    ring,
		dead:    make([]atomic.Bool, cfg.Nodes),
		delayNS: make([]atomic.Int64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		e, err := newFailEngine(cfg.Seed)
		if err != nil {
			c.close()
			return nil, err
		}
		c.engines = append(c.engines, e)
	}
	mirror := func() cluster.Handler {
		e, err := newFailEngine(cfg.Seed)
		if err != nil {
			panic(fmt.Sprintf("bench: mirror engine: %v", err))
		}
		return e
	}
	for i := 0; i < cfg.Nodes; i++ {
		transports := make([]cluster.Transport, cfg.Nodes)
		for j := range transports {
			if j != i {
				transports[j] = &failTransport{c: c, to: j}
			}
		}
		node, err := cluster.NewNode(cluster.NodeConfig{
			Ring:        ring,
			Self:        i,
			Local:       c.engines[i],
			Transports:  transports,
			Default:     tuple.CO2,
			Replication: cluster.ReplicationConfig{NewMirror: mirror},
		})
		if err != nil {
			c.close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

func (c *failCluster) close() {
	for _, n := range c.nodes {
		n.Close()
	}
	for _, e := range c.engines {
		e.Close()
	}
}

// failData lays the deterministic lattice from the cluster tests over
// the region: value is a linear field of position, timestamps spread
// through window 0, so every answer is predictable and stable.
func failData() tuple.Batch {
	var b tuple.Batch
	i := 0
	for x := -1900.0; x <= 1900; x += 200 {
		for y := -1900.0; y <= 1900; y += 200 {
			t := 100 + float64(i%330)*10
			b = append(b, tuple.Raw{T: t, X: x, Y: y, S: 400 + 0.01*x + 0.02*y})
			i++
		}
	}
	return b
}

// waitFailConverged polls until every sampled shard's replicas answer
// exactly the owner engine's value, i.e. the replication streams (and
// any catch-up pulls) have fully drained.
func (c *failCluster) waitConverged(reqs []query.Request, timeout time.Duration) error {
	//ctxcheck:allow the benchmark run is its own root; the poll is deadline-bounded
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	for {
		lag := ""
	check:
		for _, req := range reqs {
			pt := geo.Point{X: req.X, Y: req.Y}
			owner := c.ring.Owner(tuple.CO2, pt)
			want, err := c.engines[owner].Query(ctx, req)
			if err != nil {
				return fmt.Errorf("owner %d query: %w", owner, err)
			}
			k := cluster.ShardKey{Pollutant: tuple.CO2, Cell: c.ring.CellOf(pt)}
			for _, rep := range c.ring.ReplicasFor(k)[1:] {
				tr := &failTransport{c: c, to: rep}
				resp, err := tr.Exchange(wire.ReplicaRead{Origin: uint16(owner),
					Inner: wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant}})
				if err != nil {
					return err
				}
				if er, isErr := resp.(wire.ErrorResponse); isErr && strings.HasPrefix(er.Msg, "replica:") {
					lag = fmt.Sprintf("replica %d has no usable mirror of %d yet", rep, owner)
					break check
				}
				qr, isQ := resp.(wire.QueryResponse)
				if !isQ || qr.Value != want {
					lag = fmt.Sprintf("replica %d of %d answers %#v, owner answers %v", rep, owner, resp, want)
					break check
				}
			}
		}
		if lag == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never converged: %s", lag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func failDialer(c *failCluster) client.Dialer {
	return func(addr string) (client.Transport, error) {
		for i := 0; i < c.ring.Nodes(); i++ {
			if c.ring.Addr(i) == addr {
				return &failTransport{c: c, to: i}, nil
			}
		}
		return nil, fmt.Errorf("unknown address %q", addr)
	}
}

// RunFailover runs both phases on fresh clusters and returns the
// self-validated result.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	res := &FailoverResult{Config: cfg}
	if err := runFailoverKill(cfg, res); err != nil {
		return nil, fmt.Errorf("failover phase: %w", err)
	}
	if err := runFailoverHedge(cfg, res); err != nil {
		return nil, fmt.Errorf("hedging phase: %w", err)
	}
	res.ZeroErrorFailover = res.FailedAfterKill == 0 && res.IngestFailures == 0 &&
		res.VictimShardQueries > 0 && res.ClientFailovers > 0
	res.ByteEqualReplicas = res.Mismatches == 0
	res.HedgeP99Improved = res.HedgedP99Ms <= res.UnhedgedP99Ms && res.HedgeWins > 0
	return res, nil
}

// runFailoverKill is phase one: load, converge, record the owners'
// answers, kill a node, then drive a mixed read/write closed loop
// through the sharded client. Reads on the dead node's shards must all
// succeed byte-equal from its replica; writes (which never fail over)
// keep landing on the surviving owners.
func runFailoverKill(cfg FailoverConfig, res *FailoverResult) error {
	c, err := newFailCluster(cfg)
	if err != nil {
		return err
	}
	defer c.close()
	//ctxcheck:allow the benchmark run is its own root; bounded by cfg.Queries
	ctx := context.Background()

	data := failData()
	resp := c.nodes[0].HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: data})
	if ir, ok := resp.(wire.IngestResponse); !ok || int(ir.Ingested) != len(data) {
		return fmt.Errorf("seed ingest failed: %#v", resp)
	}
	res.Loaded = len(data)

	var samples []query.Request
	for i := 0; i < len(data); i += 7 {
		samples = append(samples, query.Request{T: failQueryT, X: data[i].X, Y: data[i].Y, Pollutant: tuple.CO2})
	}
	if err := c.waitConverged(samples, time.Duration(cfg.ConvergeTimeoutS)*time.Second); err != nil {
		return err
	}

	// The answers the owners give while alive are the contract the
	// replicas must honour after the kill.
	want := make([]float64, len(samples))
	owners := make([]int, len(samples))
	for i, req := range samples {
		owners[i] = c.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		v, err := c.engines[owners[i]].Query(ctx, req)
		if err != nil {
			return err
		}
		want[i] = v
	}

	sc := client.NewSharded(&failTransport{c: c, to: 0}, failDialer(c))
	defer sc.Close()
	// Warm the client's ring before the node disappears.
	s0 := samples[0]
	if _, err := sc.Exchange(wire.QueryRequest{T: s0.T, X: s0.X, Y: s0.Y, Pollutant: s0.Pollutant}); err != nil {
		return err
	}

	const victim = 2
	res.Victim = victim
	c.dead[victim].Store(true)

	// Survivor-owned write load interleaved with the reads: writes never
	// fail over (primary-commits design), so the mixed load mirrors what
	// an operator sees mid-outage — reads whole, writes on live shards.
	var liveWrites tuple.Batch
	for _, r := range data {
		if c.ring.Owner(tuple.CO2, r.Pos()) != victim {
			liveWrites = append(liveWrites, r)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for q := 0; q < cfg.Queries; q++ {
		i := rng.Intn(len(samples))
		req := samples[i]
		res.QueriesAfterKill++
		if owners[i] == victim {
			res.VictimShardQueries++
		}
		out, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
		if err != nil {
			res.FailedAfterKill++
			continue
		}
		qr, ok := out.(wire.QueryResponse)
		if !ok {
			res.FailedAfterKill++
			continue
		}
		// The victim's shards are frozen mid-outage (writes never fail
		// over), so its replica must answer exactly what the owner
		// answered before dying. Survivor shards keep absorbing the
		// write load, so only success is required there.
		if owners[i] == victim && qr.Value != want[i] {
			res.Mismatches++
		}
		if q%8 == 7 {
			w := liveWrites[rng.Intn(len(liveWrites))]
			res.IngestsAfterKill++
			wr := c.nodes[0].HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: tuple.Batch{w}})
			if _, ok := wr.(wire.IngestResponse); !ok {
				res.IngestFailures++
			}
		}
	}
	res.ClientFailovers = sc.Stats().Failovers
	return nil
}

// runFailoverHedge is phase two: a healthy cluster with one slow
// primary. The same closed loop runs twice — hedging off, hedging on —
// and records the latency distributions.
func runFailoverHedge(cfg FailoverConfig, res *FailoverResult) error {
	c, err := newFailCluster(cfg)
	if err != nil {
		return err
	}
	defer c.close()

	data := failData()
	resp := c.nodes[0].HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: data})
	if ir, ok := resp.(wire.IngestResponse); !ok || int(ir.Ingested) != len(data) {
		return fmt.Errorf("seed ingest failed: %#v", resp)
	}
	var samples []query.Request
	for i := 0; i < len(data); i += 7 {
		samples = append(samples, query.Request{T: failQueryT, X: data[i].X, Y: data[i].Y, Pollutant: tuple.CO2})
	}
	if err := c.waitConverged(samples, time.Duration(cfg.ConvergeTimeoutS)*time.Second); err != nil {
		return err
	}

	const slowNode = 0
	run := func(hedge bool) ([]float64, error) {
		sc := client.NewSharded(&failTransport{c: c, to: 1}, failDialer(c))
		defer sc.Close()
		sc.SetHedging(hedge)
		sc.SetHedgeFloor(time.Duration(cfg.HedgeFloorMS) * time.Millisecond)
		// Warm the client's latency window on the healthy cluster, so the
		// p99-derived hedge delay reflects steady state rather than the
		// injected fault, then slow the primary for the measured loop.
		c.delayNS[slowNode].Store(0)
		for i := 0; i < 32; i++ {
			req := samples[i%len(samples)]
			if _, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant}); err != nil {
				return nil, err
			}
		}
		c.delayNS[slowNode].Store(int64(time.Duration(cfg.SlowPrimaryMS) * time.Millisecond))
		rng := rand.New(rand.NewSource(cfg.Seed + 2))
		lat := make([]float64, 0, cfg.Queries)
		for q := 0; q < cfg.Queries; q++ {
			req := samples[rng.Intn(len(samples))]
			start := time.Now()
			out, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
			if err != nil {
				return nil, err
			}
			if _, ok := out.(wire.QueryResponse); !ok {
				return nil, fmt.Errorf("query answered %#v", out)
			}
			lat = append(lat, float64(time.Since(start).Microseconds())/1000)
		}
		if hedge {
			st := sc.Stats()
			res.HedgeProbes = st.Hedged
			res.HedgeWins = st.HedgeWins
		}
		return lat, nil
	}

	unhedged, err := run(false)
	if err != nil {
		return err
	}
	hedged, err := run(true)
	if err != nil {
		return err
	}
	res.UnhedgedP50Ms = percentile(unhedged, 0.50)
	res.UnhedgedP99Ms = percentile(unhedged, 0.99)
	res.HedgedP50Ms = percentile(hedged, 0.50)
	res.HedgedP99Ms = percentile(hedged, 0.99)
	return nil
}

// PrintFailover renders the benchmark result as a table.
func PrintFailover(w io.Writer, res *FailoverResult) {
	fmt.Fprintln(w, "# PR-9: replica failover + hedged reads (closed loop)")
	fmt.Fprintf(w, "%d nodes, R=%d, %d tuples, %d queries/phase, slow primary +%dms\n",
		res.Config.Nodes, res.Config.Replicas, res.Loaded, res.Config.Queries, res.Config.SlowPrimaryMS)
	fmt.Fprintf(w, "%-28s %12d\n", "queries after kill", res.QueriesAfterKill)
	fmt.Fprintf(w, "%-28s %12d\n", "on dead node's shards", res.VictimShardQueries)
	fmt.Fprintf(w, "%-28s %12d\n", "failed after kill", res.FailedAfterKill)
	fmt.Fprintf(w, "%-28s %12d\n", "replica answer mismatches", res.Mismatches)
	fmt.Fprintf(w, "%-28s %12d\n", "ingests after kill", res.IngestsAfterKill)
	fmt.Fprintf(w, "%-28s %12d\n", "ingest failures", res.IngestFailures)
	fmt.Fprintf(w, "%-28s %12d\n", "client failovers", res.ClientFailovers)
	fmt.Fprintf(w, "%-28s %12.3f\n", "unhedged p50 (ms)", res.UnhedgedP50Ms)
	fmt.Fprintf(w, "%-28s %12.3f\n", "unhedged p99 (ms)", res.UnhedgedP99Ms)
	fmt.Fprintf(w, "%-28s %12.3f\n", "hedged p50 (ms)", res.HedgedP50Ms)
	fmt.Fprintf(w, "%-28s %12.3f\n", "hedged p99 (ms)", res.HedgedP99Ms)
	fmt.Fprintf(w, "%-28s %12d\n", "hedge probes", res.HedgeProbes)
	fmt.Fprintf(w, "%-28s %12d\n", "hedge wins", res.HedgeWins)
	fmt.Fprintf(w, "%-28s %12v\n", "zero-error failover", res.ZeroErrorFailover)
	fmt.Fprintf(w, "%-28s %12v\n", "byte-equal replicas", res.ByteEqualReplicas)
	fmt.Fprintf(w, "%-28s %12v\n", "hedged p99 <= unhedged", res.HedgeP99Improved)
}
