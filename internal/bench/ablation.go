package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/query"
	"repro/internal/regress"
	"repro/internal/wire"
)

// This file implements the ablation experiments DESIGN.md §4 calls out:
// they isolate the contribution of each design choice in the paper's
// system (adaptivity, model family, wire codec, index tuning).

// AblationCoverRow compares cover-construction strategies on one window.
type AblationCoverRow struct {
	Strategy  string
	Models    int
	MeanErr   float64 // tuple-weighted mean approximation error (fraction)
	MaxErr    float64
	NRMSE     float64 // against ground truth on a workload
	BuildTime time.Duration
}

// RunAblationCovers compares Ad-KMN against fixed-k k-means (at several k)
// and uniform grids (at several resolutions) on the same window and
// workload — quantifying what the paper's adaptivity buys.
func RunAblationCovers(d *Dataset, h int, numQueries int, seed int64) ([]AblationCoverRow, error) {
	start := len(d.Data) / 3
	if start+h > len(d.Data) {
		start = len(d.Data) - h
	}
	w, err := d.WindowOfSize(start, h)
	if err != nil {
		return nil, err
	}
	wl, err := d.MakeWorkload(w, numQueries, 300, seed)
	if err != nil {
		return nil, err
	}
	ccfg := PaperConfig(0, seed)

	type builder struct {
		name string
		mk   func() (*core.Cover, error)
	}
	builders := []builder{
		{"ad-kmn", func() (*core.Cover, error) { return core.BuildCover(w, 0, 1e18, ccfg) }},
		{"fixed-k2", func() (*core.Cover, error) { return core.BuildFixedKCover(w, 0, 1e18, 2, ccfg) }},
		{"fixed-k8", func() (*core.Cover, error) { return core.BuildFixedKCover(w, 0, 1e18, 8, ccfg) }},
		{"fixed-k32", func() (*core.Cover, error) { return core.BuildFixedKCover(w, 0, 1e18, 32, ccfg) }},
		{"grid-3x3", func() (*core.Cover, error) { return core.BuildGridCover(w, 0, 1e18, 3, ccfg) }},
		{"grid-6x6", func() (*core.Cover, error) { return core.BuildGridCover(w, 0, 1e18, 6, ccfg) }},
	}
	rows := make([]AblationCoverRow, 0, len(builders))
	for _, b := range builders {
		t0 := time.Now()
		cv, err := b.mk()
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", b.name, err)
		}
		build := time.Since(t0)
		p, err := query.NewCover(cv)
		if err != nil {
			return nil, err
		}
		_, est, _ := timeQueries(p, wl, w)
		nrmse, err := eval.NRMSE(est, wl.Truth)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationCoverRow{
			Strategy:  b.name,
			Models:    cv.Size(),
			MeanErr:   cv.MeanApproxError(),
			MaxErr:    cv.MaxApproxError(),
			NRMSE:     nrmse,
			BuildTime: build,
		})
	}
	return rows, nil
}

// PrintAblationCovers renders the cover-strategy ablation.
func PrintAblationCovers(w io.Writer, rows []AblationCoverRow) {
	fmt.Fprintln(w, "# Ablation: Ad-KMN vs fixed-k vs uniform grid")
	fmt.Fprintf(w, "%-10s %8s %12s %12s %10s %12s\n",
		"strategy", "models", "mean-err-%", "max-err-%", "NRMSE-%", "build")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %12.2f %12.2f %10.2f %12v\n",
			r.Strategy, r.Models, 100*r.MeanErr, 100*r.MaxErr, r.NRMSE, r.BuildTime.Round(time.Microsecond))
	}
}

// AblationModelRow compares per-region model families.
type AblationModelRow struct {
	Family string
	Models int
	NRMSE  float64
	// PayloadBytes is the binary model-cache payload size with this
	// family — richer models cost more bandwidth.
	PayloadBytes int
}

// RunAblationModelFamily rebuilds the Ad-KMN cover with each feature
// family and measures accuracy and model-cache payload size.
func RunAblationModelFamily(d *Dataset, h int, numQueries int, seed int64) ([]AblationModelRow, error) {
	start := len(d.Data) / 3
	if start+h > len(d.Data) {
		start = len(d.Data) - h
	}
	w, err := d.WindowOfSize(start, h)
	if err != nil {
		return nil, err
	}
	wl, err := d.MakeWorkload(w, numQueries, 300, seed)
	if err != nil {
		return nil, err
	}
	families := []regress.Features{
		regress.Constant, regress.LinearT, regress.LinearXY, regress.LinearXYT,
		regress.QuadraticXY,
	}
	rows := make([]AblationModelRow, 0, len(families))
	for _, f := range families {
		cfg := PaperConfig(0, seed)
		cfg.Features = f
		cv, err := core.BuildCover(w, 0, 1e18, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: family %s: %w", f.Name(), err)
		}
		p, err := query.NewCover(cv)
		if err != nil {
			return nil, err
		}
		_, est, _ := timeQueries(p, wl, w)
		nrmse, err := eval.NRMSE(est, wl.Truth)
		if err != nil {
			return nil, err
		}
		resp, err := wire.ModelResponseFromCover(cv)
		if err != nil {
			return nil, err
		}
		data, err := wire.Binary.Encode(resp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationModelRow{
			Family:       f.Name(),
			Models:       cv.Size(),
			NRMSE:        nrmse,
			PayloadBytes: len(data),
		})
	}
	return rows, nil
}

// PrintAblationModelFamily renders the model-family ablation.
func PrintAblationModelFamily(w io.Writer, rows []AblationModelRow) {
	fmt.Fprintln(w, "# Ablation: per-region model family")
	fmt.Fprintf(w, "%-14s %8s %10s %14s\n", "family", "models", "NRMSE-%", "payload (B)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %10.2f %14d\n", r.Family, r.Models, r.NRMSE, r.PayloadBytes)
	}
}

// AblationCodecRow compares wire codecs on the model-cache payload.
type AblationCodecRow struct {
	Codec         string
	ModelRespByte int
	QueryReqByte  int
	QueryRespByte int
}

// RunAblationCodec measures message sizes under both codecs for a real
// cover.
func RunAblationCodec(d *Dataset, h int, seed int64) ([]AblationCodecRow, error) {
	start := len(d.Data) / 3
	if start+h > len(d.Data) {
		start = len(d.Data) - h
	}
	w, err := d.WindowOfSize(start, h)
	if err != nil {
		return nil, err
	}
	cv, err := core.BuildCover(w, 0, 1e18, PaperConfig(0, seed))
	if err != nil {
		return nil, err
	}
	resp, err := wire.ModelResponseFromCover(cv)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationCodecRow, 0, 2)
	for _, codec := range []wire.Codec{wire.Binary, wire.JSON} {
		mr, err := codec.Encode(resp)
		if err != nil {
			return nil, err
		}
		qq, err := codec.Encode(wire.QueryRequest{T: 1, X: 2, Y: 3})
		if err != nil {
			return nil, err
		}
		qr, err := codec.Encode(wire.QueryResponse{Value: 512.5})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationCodecRow{
			Codec:         codec.Name(),
			ModelRespByte: len(mr),
			QueryReqByte:  len(qq),
			QueryRespByte: len(qr),
		})
	}
	return rows, nil
}

// PrintAblationCodec renders the codec ablation.
func PrintAblationCodec(w io.Writer, rows []AblationCodecRow) {
	fmt.Fprintln(w, "# Ablation: wire codec message sizes")
	fmt.Fprintf(w, "%-8s %16s %14s %15s\n", "codec", "model resp (B)", "query req (B)", "query resp (B)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %16d %14d %15d\n", r.Codec, r.ModelRespByte, r.QueryReqByte, r.QueryRespByte)
	}
}

// AblationIndexRow measures index query time vs tuning parameter.
type AblationIndexRow struct {
	Index   string
	Param   int // R-tree fan-out (VP-tree has no tuning knob here)
	Elapsed time.Duration
}

// RunAblationIndexTuning sweeps the R-tree fan-out, verifying the baseline
// indexes are competently tuned (a fairness check on Figure 6a).
func RunAblationIndexTuning(d *Dataset, h, numQueries int, radius float64, seed int64) ([]AblationIndexRow, error) {
	start := len(d.Data) / 3
	if start+h > len(d.Data) {
		start = len(d.Data) - h
	}
	w, err := d.WindowOfSize(start, h)
	if err != nil {
		return nil, err
	}
	wl, err := d.MakeWorkload(w, numQueries, 300, seed)
	if err != nil {
		return nil, err
	}
	var rows []AblationIndexRow
	for _, fanout := range []int{4, 8, 16, 32, 64} {
		p, err := query.NewRTreeFanout(w, radius, fanout)
		if err != nil {
			return nil, err
		}
		elapsed, _, _ := timeQueries(p, wl, w)
		rows = append(rows, AblationIndexRow{Index: "r-tree", Param: fanout, Elapsed: elapsed})
	}
	vp, err := query.NewVPTree(w, radius)
	if err != nil {
		return nil, err
	}
	elapsed, _, _ := timeQueries(vp, wl, w)
	rows = append(rows, AblationIndexRow{Index: "vp-tree", Param: 0, Elapsed: elapsed})
	return rows, nil
}

// PrintAblationIndexTuning renders the index-tuning ablation.
func PrintAblationIndexTuning(w io.Writer, rows []AblationIndexRow) {
	fmt.Fprintln(w, "# Ablation: index tuning (R-tree fan-out sweep)")
	fmt.Fprintf(w, "%-10s %8s %14s\n", "index", "param", "elapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %14v\n", r.Index, r.Param, r.Elapsed.Round(time.Microsecond))
	}
}
