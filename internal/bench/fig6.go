package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/eval"
	"repro/internal/query"
	"repro/internal/tuple"
)

// Fig6Config parameterizes the Figure 6 experiments. The defaults are the
// paper's settings: H from 40 to 240 raw tuples, 5000 point queries,
// r = 1 km, τn = 2%.
type Fig6Config struct {
	// WindowSizes are the H values to sweep.
	WindowSizes []int
	// NumQueries is the point-query count per H (paper: 5000).
	NumQueries int
	// Radius is r in meters (paper: 1 km).
	Radius float64
	// Tau is τn (paper: 0.02).
	Tau float64
	// JitterSigma controls how far query positions stray from the sensed
	// corridors, in meters.
	JitterSigma float64
	// Repeats re-runs each timing measurement and keeps the fastest, which
	// suppresses scheduler noise in the elapsed-time series.
	Repeats int
	// Seed drives workload sampling and clustering.
	Seed int64
}

// DefaultFig6Config returns the paper's evaluation settings.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		WindowSizes: []int{40, 80, 120, 160, 200, 240},
		NumQueries:  5000,
		Radius:      1000,
		Tau:         0.02,
		JitterSigma: 150,
		Repeats:     3,
		Seed:        1,
	}
}

// Fig6Row is one H value's measurements across methods.
type Fig6Row struct {
	H int
	// Elapsed is the time to process all queries, per method (Fig 6a).
	Elapsed map[Method]time.Duration
	// BuildTime is the one-off construction cost per method (index build
	// or Ad-KMN model estimation), reported for context.
	BuildTime map[Method]time.Duration
	// NRMSE is the accuracy against ground truth, in percent, for the
	// methods Figure 6(b) plots (Ad-KMN and naive).
	NRMSE map[Method]float64
	// CoverSize is the number of models Ad-KMN produced.
	CoverSize int
	// Misses counts queries with no data in radius (fallback answered).
	Misses map[Method]int
}

// RunFig6 executes the Figure 6 sweep over the dataset.
func RunFig6(d *Dataset, cfg Fig6Config) ([]Fig6Row, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	rows := make([]Fig6Row, 0, len(cfg.WindowSizes))
	for _, h := range cfg.WindowSizes {
		// Anchor each H's window at the same stream position (just after
		// the first day) so methods see comparable data.
		start := len(d.Data) / 3
		if start+h > len(d.Data) {
			start = len(d.Data) - h
		}
		w, err := d.WindowOfSize(start, h)
		if err != nil {
			return nil, err
		}
		wl, err := d.MakeWorkload(w, cfg.NumQueries, cfg.JitterSigma, cfg.Seed+int64(h))
		if err != nil {
			return nil, err
		}
		row := Fig6Row{
			H:         h,
			Elapsed:   make(map[Method]time.Duration),
			BuildTime: make(map[Method]time.Duration),
			NRMSE:     make(map[Method]float64),
			Misses:    make(map[Method]int),
		}
		for _, m := range AllMethods {
			buildStart := time.Now()
			p, err := BuildProcessor(m, w, cfg.Radius, cfg.Tau, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("bench: H=%d method %s: %w", h, m, err)
			}
			row.BuildTime[m] = time.Since(buildStart)

			best := time.Duration(0)
			var est []float64
			var misses int
			for rep := 0; rep < cfg.Repeats; rep++ {
				elapsed, e, miss := timeQueries(p, wl, w)
				if rep == 0 || elapsed < best {
					best = elapsed
				}
				est, misses = e, miss
			}
			row.Elapsed[m] = best
			row.Misses[m] = misses
			nrmse, err := eval.NRMSE(est, wl.Truth)
			if err != nil {
				return nil, err
			}
			row.NRMSE[m] = nrmse
			if cp, ok := p.(*query.Cover); ok {
				row.CoverSize = cp.CoverModel().Size()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Speedup returns how much faster Ad-KMN processed the workload than the
// given method at this row's H.
func (r Fig6Row) Speedup(m Method) float64 {
	ad := r.Elapsed[MethodAdKMN]
	if ad <= 0 {
		return 0
	}
	return float64(r.Elapsed[m]) / float64(ad)
}

// PrintFig6a writes the efficiency series (Figure 6a: elapsed time vs H,
// log-scale y in the paper).
func PrintFig6a(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "# Figure 6(a): query-processing efficiency")
	fmt.Fprintln(w, "# elapsed seconds for the full point-query workload")
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %10s %10s\n",
		"H", "ad-kmn", "vp-tree", "r-tree", "naive", "vs vp", "vs naive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %12.6f %12.6f %12.6f %12.6f %9.1fx %9.1fx\n",
			r.H,
			r.Elapsed[MethodAdKMN].Seconds(),
			r.Elapsed[MethodVPTree].Seconds(),
			r.Elapsed[MethodRTree].Seconds(),
			r.Elapsed[MethodNaive].Seconds(),
			r.Speedup(MethodVPTree),
			r.Speedup(MethodNaive))
	}
}

// PrintFig6b writes the accuracy series (Figure 6b: NRMSE vs H for Ad-KMN
// and naive; the index methods match naive exactly and are omitted, as in
// the paper).
func PrintFig6b(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "# Figure 6(b): accuracy (NRMSE %, lower is better)")
	fmt.Fprintf(w, "%-6s %10s %10s %8s\n", "H", "ad-kmn", "naive", "models")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %10.2f %10.2f %8d\n",
			r.H, r.NRMSE[MethodAdKMN], r.NRMSE[MethodNaive], r.CoverSize)
	}
}

// windowMeanAbsolute is a tiny helper kept for tests.
func windowMeanAbsolute(w tuple.Batch) float64 {
	m, _ := w.MeanValue()
	return m
}
