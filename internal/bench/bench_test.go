package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smallDataset generates a 2-day deployment (~11.5K tuples), enough for
// every experiment at test scale.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := LoadDataset(1, 2*86400)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadDataset(t *testing.T) {
	d := smallDataset(t)
	if len(d.Data) < 10000 {
		t.Fatalf("dataset too small: %d", len(d.Data))
	}
	if !d.Data.SortedByTime() {
		t.Error("dataset not time sorted")
	}
}

func TestWindowOfSize(t *testing.T) {
	d := smallDataset(t)
	w, err := d.WindowOfSize(100, 240)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 240 {
		t.Fatalf("window = %d tuples", len(w))
	}
	if _, err := d.WindowOfSize(-1, 10); err == nil {
		t.Error("negative start should error")
	}
	if _, err := d.WindowOfSize(0, 0); err == nil {
		t.Error("zero size should error")
	}
	if _, err := d.WindowOfSize(len(d.Data), 10); err == nil {
		t.Error("past-end window should error")
	}
}

func TestMakeWorkload(t *testing.T) {
	d := smallDataset(t)
	w, err := d.WindowOfSize(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := d.MakeWorkload(w, 500, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Queries) != 500 || len(wl.Truth) != 500 {
		t.Fatalf("workload sizes %d/%d", len(wl.Queries), len(wl.Truth))
	}
	tMin, tMax, _ := w.TimeSpan()
	for i, q := range wl.Queries {
		if q.T < tMin || q.T > tMax {
			t.Fatalf("query %d time %v outside window [%v,%v]", i, q.T, tMin, tMax)
		}
		if wl.Truth[i] < 250 || wl.Truth[i] > 6000 {
			t.Fatalf("truth %d = %v implausible", i, wl.Truth[i])
		}
	}
	if _, err := d.MakeWorkload(nil, 10, 300, 1); err == nil {
		t.Error("empty window should error")
	}
	if _, err := d.MakeWorkload(w, 0, 300, 1); err == nil {
		t.Error("zero queries should error")
	}
}

func TestRunFig6ShapeHolds(t *testing.T) {
	d := smallDataset(t)
	cfg := DefaultFig6Config()
	cfg.NumQueries = 1000 // keep the unit test quick
	cfg.WindowSizes = []int{40, 120, 240}
	rows, err := RunFig6(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Efficiency shape (Fig 6a): the model cover is the fastest method,
		// the naive scan the slowest of the raw methods at larger H.
		if r.Elapsed[MethodAdKMN] <= 0 {
			t.Fatalf("H=%d: zero elapsed for ad-kmn", r.H)
		}
		if r.Speedup(MethodNaive) < 1 {
			t.Errorf("H=%d: ad-kmn (%v) not faster than naive (%v)",
				r.H, r.Elapsed[MethodAdKMN], r.Elapsed[MethodNaive])
		}
		// Accuracy shape (Fig 6b): the model cover beats averaging.
		if r.NRMSE[MethodAdKMN] >= r.NRMSE[MethodNaive] {
			t.Errorf("H=%d: ad-kmn NRMSE %.2f not below naive %.2f",
				r.H, r.NRMSE[MethodAdKMN], r.NRMSE[MethodNaive])
		}
		// Index methods return the same estimates as naive (identical
		// semantics; tiny float tolerance because visit order changes the
		// summation rounding).
		if math.Abs(r.NRMSE[MethodRTree]-r.NRMSE[MethodNaive]) > 1e-6 ||
			math.Abs(r.NRMSE[MethodVPTree]-r.NRMSE[MethodNaive]) > 1e-6 {
			t.Errorf("H=%d: index NRMSE differs from naive", r.H)
		}
		if r.CoverSize <= 0 {
			t.Errorf("H=%d: cover size not recorded", r.H)
		}
	}
	// Naive elapsed must grow with H (it is O(H) per query).
	if rows[2].Elapsed[MethodNaive] <= rows[0].Elapsed[MethodNaive] {
		t.Errorf("naive elapsed did not grow with H: %v -> %v",
			rows[0].Elapsed[MethodNaive], rows[2].Elapsed[MethodNaive])
	}
	var buf bytes.Buffer
	PrintFig6a(&buf, rows)
	PrintFig6b(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "Figure 6(a)") || !strings.Contains(out, "Figure 6(b)") {
		t.Error("print output missing headers")
	}
}

func TestRunFig7aShapeHolds(t *testing.T) {
	d := smallDataset(t)
	cfg := DefaultFig7aConfig()
	cfg.Runs = 3 // keep the unit test quick
	res, err := RunFig7a(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad := res.Bytes[MethodAdKMN]
	naive := res.Bytes[MethodNaive]
	rt := res.Bytes[MethodRTree]
	vp := res.Bytes[MethodVPTree]
	// Paper ordering: models ≪ raw points < R-tree < VP-tree.
	if !(ad < naive && naive < rt && rt < vp) {
		t.Errorf("memory ordering violated: ad=%v naive=%v rtree=%v vptree=%v",
			ad, naive, rt, vp)
	}
	// The headline claim: the model cover dramatically reduces memory.
	if res.Ratio(MethodNaive) < 3 {
		t.Errorf("naive/ad-kmn ratio = %.1f, want ≥ 3", res.Ratio(MethodNaive))
	}
	if len(res.CoverSizes) != cfg.Runs {
		t.Errorf("cover sizes recorded for %d runs, want %d", len(res.CoverSizes), cfg.Runs)
	}
	var buf bytes.Buffer
	PrintFig7a(&buf, res)
	if !strings.Contains(buf.String(), "Figure 7(a)") {
		t.Error("print output missing header")
	}
	// Config validation.
	if _, err := RunFig7a(d, Fig7aConfig{H: 100, Runs: 0}); err == nil {
		t.Error("zero runs should error")
	}
	if _, err := RunFig7a(d, Fig7aConfig{H: len(d.Data) + 1, Runs: 1}); err == nil {
		t.Error("oversize H should error")
	}
}

func TestRunFig7bShapeHolds(t *testing.T) {
	d := smallDataset(t)
	res, err := RunFig7b(d, DefaultFig7bConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The baseline does one exchange per query tuple; the model-cache does
	// one or two in total (the 100-minute query may cross one window edge).
	if res.Baseline.Exchanges != 100 {
		t.Errorf("baseline exchanges = %d, want 100", res.Baseline.Exchanges)
	}
	if res.ModelCache.Exchanges > 2 {
		t.Errorf("model-cache exchanges = %d, want ≤ 2", res.ModelCache.Exchanges)
	}
	// Two-orders-of-magnitude shape from the paper (113x sent, 31x
	// received, 100x time): require at least ~one-and-a-half orders.
	if res.SentRatio() < 30 {
		t.Errorf("sent ratio = %.1f, want ≥ 30", res.SentRatio())
	}
	if res.ReceivedRatio() < 5 {
		t.Errorf("received ratio = %.1f, want ≥ 5", res.ReceivedRatio())
	}
	if res.TimeRatio() < 30 {
		t.Errorf("time ratio = %.1f, want ≥ 30", res.TimeRatio())
	}
	var buf bytes.Buffer
	PrintFig7b(&buf, res)
	if !strings.Contains(buf.String(), "Figure 7(b)") {
		t.Error("print output missing header")
	}
	if _, err := RunFig7b(d, Fig7bConfig{}); err == nil {
		t.Error("zero queries should error")
	}
}

func TestRunAblationCovers(t *testing.T) {
	d := smallDataset(t)
	rows, err := RunAblationCovers(d, 2000, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := map[string]AblationCoverRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	// Ad-KMN must beat the un-adaptive k=2 baseline on fit error.
	if byName["ad-kmn"].MeanErr >= byName["fixed-k2"].MeanErr {
		t.Errorf("ad-kmn mean err %.4f not below fixed-k2 %.4f",
			byName["ad-kmn"].MeanErr, byName["fixed-k2"].MeanErr)
	}
	var buf bytes.Buffer
	PrintAblationCovers(&buf, rows)
	if !strings.Contains(buf.String(), "ad-kmn") {
		t.Error("print output incomplete")
	}
}

func TestRunAblationModelFamily(t *testing.T) {
	d := smallDataset(t)
	rows, err := RunAblationModelFamily(d, 2000, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.PayloadBytes <= 0 || r.Models <= 0 {
			t.Errorf("family %s: payload=%d models=%d", r.Family, r.PayloadBytes, r.Models)
		}
	}
	var buf bytes.Buffer
	PrintAblationModelFamily(&buf, rows)
	if !strings.Contains(buf.String(), "linear-xyt") {
		t.Error("print output incomplete")
	}
}

func TestRunAblationCodec(t *testing.T) {
	d := smallDataset(t)
	rows, err := RunAblationCodec(d, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	var bin, js AblationCodecRow
	for _, r := range rows {
		if r.Codec == "binary" {
			bin = r
		} else {
			js = r
		}
	}
	if bin.ModelRespByte >= js.ModelRespByte {
		t.Errorf("binary model response %dB not smaller than JSON %dB",
			bin.ModelRespByte, js.ModelRespByte)
	}
	var buf bytes.Buffer
	PrintAblationCodec(&buf, rows)
	if !strings.Contains(buf.String(), "binary") {
		t.Error("print output incomplete")
	}
}

func TestRunAblationIndexTuning(t *testing.T) {
	d := smallDataset(t)
	rows, err := RunAblationIndexTuning(d, 2000, 300, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 5 fan-outs + vp-tree
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 {
			t.Errorf("%s param %d: zero elapsed", r.Index, r.Param)
		}
	}
	var buf bytes.Buffer
	PrintAblationIndexTuning(&buf, rows)
	if !strings.Contains(buf.String(), "vp-tree") {
		t.Error("print output incomplete")
	}
}
