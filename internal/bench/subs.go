package bench

// The PR-6 closed-loop subscription benchmark: N subscribers hold
// routes over the Lausanne corridor while ingest rounds land in one
// window at a time. Each round measures the ingest-to-push latency at
// every subscriber whose window was touched, the bytes actually pushed
// (delta frames), and the bytes the same subscribers would have
// transferred under PR-5-style polling (a full route vector per
// subscriber per round). Registry stats supply the re-evaluations the
// invalidation hook avoided. The result serializes to BENCH_6.json.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// SubsConfig parameterizes the subscription benchmark.
type SubsConfig struct {
	// Subscribers is N, spread round-robin over the windows.
	Subscribers int `json:"subscribers"`
	// RoutePoints is the points per subscribed route (the paper's
	// commuter route; the acceptance criterion uses 20).
	RoutePoints int `json:"route_points"`
	// Windows is how many time windows the deployment spans; each
	// subscriber's route lives in one window, so a round's ingest
	// overlaps only the subscribers of its target window.
	Windows int `json:"windows"`
	// WindowLen is the window length in seconds.
	WindowLen float64 `json:"window_len_s"`
	// Rounds is the number of ingest rounds (round r targets window
	// r mod Windows).
	Rounds int `json:"rounds"`
	// SamplingInterval overrides the deployment's sampling cadence so
	// short runs still fill every window.
	SamplingInterval float64 `json:"sampling_interval_s"`
	// JitterSigma is how far route points stray from the sensed
	// corridor, in meters.
	JitterSigma float64 `json:"jitter_sigma_m"`
	// QueueDepth bounds each subscription's push queue.
	QueueDepth int `json:"queue_depth"`
	// Seed drives the deployment, the routes, and clustering.
	Seed int64 `json:"seed"`
}

// DefaultSubsConfig returns the committed BENCH_6.json workload.
func DefaultSubsConfig() SubsConfig {
	return SubsConfig{
		Subscribers:      8,
		RoutePoints:      20,
		Windows:          4,
		WindowLen:        600,
		Rounds:           12,
		SamplingInterval: 4,
		JitterSigma:      150,
		QueueDepth:       32,
		Seed:             1,
	}
}

// SubsResult is the benchmark's measurement, the schema of BENCH_6.json.
type SubsResult struct {
	Config SubsConfig `json:"config"`

	// TuplesIngested counts tuples across preload and rounds.
	TuplesIngested int `json:"tuples_ingested"`
	// PushLatencyP50Ms / P99Ms are ingest-call-to-push-receipt
	// percentiles across every (round, touched subscriber) pair.
	PushLatencyP50Ms float64 `json:"push_latency_p50_ms"`
	PushLatencyP99Ms float64 `json:"push_latency_p99_ms"`
	// PushSamples is how many latency samples the percentiles cover.
	PushSamples int `json:"push_samples"`
	// MissedPushes counts touched subscribers that produced no push
	// within the wait budget (an all-points-unchanged rebuild).
	MissedPushes int `json:"missed_pushes"`

	// PushedFrames/PushedBytes is what the server actually sent:
	// wire-encoded delta frames.
	PushedFrames int `json:"pushed_frames"`
	PushedBytes  int `json:"pushed_bytes"`
	// PolledBytes is the polling equivalent: every subscriber fetching
	// its full route vector every round, wire-encoded.
	PolledBytes int `json:"polled_bytes"`
	// PushedOverPolled is PushedBytes / PolledBytes.
	PushedOverPolled float64 `json:"pushed_over_polled"`

	// Registry counters over the round phase.
	ReEvals        int64 `json:"re_evals"`
	ReEvalsAvoided int64 `json:"re_evals_avoided"`
	PointReEvals   int64 `json:"point_re_evals"`
	DeltaPoints    int64 `json:"delta_points"`
}

// subscriber is one benchmark client: its route, live handle, and the
// value vector a polling client would re-download each round.
type subscriber struct {
	window int
	handle subs.Handle
	vector []subs.PointValue
}

func (s *subscriber) apply(ev subs.Event) {
	for _, p := range ev.Points {
		if p.Index >= 0 && p.Index < len(s.vector) {
			s.vector[p.Index] = p
		}
	}
}

// fullVector is the wire frame a poll of the whole route transfers.
func (s *subscriber) fullVector(seq uint64) wire.Push {
	ev := subs.Event{Seq: seq, Resync: true, Points: s.vector}
	return subs.PushFromEvent(s.handle.ID(), ev)
}

// RunSubs executes the closed-loop subscription benchmark.
//
//ctxcheck:allow the closed loop is bounded by cfg.Rounds; the harness owns the run
func RunSubs(cfg SubsConfig) (*SubsResult, error) {
	if cfg.Subscribers <= 0 || cfg.RoutePoints <= 0 || cfg.Windows <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("bench: subs config %+v: counts must be > 0", cfg)
	}
	if cfg.WindowLen <= 0 || cfg.SamplingInterval <= 0 {
		return nil, fmt.Errorf("bench: subs config %+v: durations must be > 0", cfg)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}

	// The deployment: the Lausanne corridor trimmed to exactly the
	// benchmark's windows, sampled densely enough to fill each.
	simCfg := sim.DefaultLausanne(cfg.Seed)
	simCfg.SamplingInterval = cfg.SamplingInterval
	simCfg.Duration = cfg.WindowLen * float64(cfg.Windows)
	data, err := sim.Generate(simCfg)
	if err != nil {
		return nil, err
	}

	// Partition the stream by window, then split each window's tuples
	// into one preload chunk plus one chunk per round targeting it.
	wins := make([]tuple.Batch, cfg.Windows)
	for _, r := range data {
		w := int(r.T / cfg.WindowLen)
		if w >= 0 && w < cfg.Windows {
			wins[w] = append(wins[w], r)
		}
	}
	chunks := make([][]tuple.Batch, cfg.Windows)
	for w := range wins {
		parts := 1 + (cfg.Rounds-w+cfg.Windows-1)/cfg.Windows // preload + rounds hitting w
		if len(wins[w]) < parts {
			return nil, fmt.Errorf("bench: window %d holds %d tuples for %d chunks — raise the sampling rate", w, len(wins[w]), parts)
		}
		per := len(wins[w]) / parts
		for p := 0; p < parts; p++ {
			end := (p + 1) * per
			if p == parts-1 {
				end = len(wins[w])
			}
			chunks[w] = append(chunks[w], wins[w][p*per:end])
		}
	}

	st := store.MustOpenMemory(cfg.WindowLen)
	eng, err := server.NewMultiEngineOpts(
		map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		PaperConfig(0.02, cfg.Seed),
		server.Options{Subs: subs.Config{QueueDepth: cfg.QueueDepth}},
	)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	//ctxcheck:allow the benchmark run is its own root; bounded by cfg.Rounds
	ctx := context.Background()

	res := &SubsResult{Config: cfg}
	ingest := func(b tuple.Batch) error {
		if err := eng.Ingest(ctx, tuple.CO2, b); err != nil {
			return err
		}
		res.TuplesIngested += len(b)
		return nil
	}
	for w := 0; w < cfg.Windows; w++ {
		if err := ingest(chunks[w][0]); err != nil {
			return nil, fmt.Errorf("bench: preload window %d: %w", w, err)
		}
	}

	// Routes: points jittered off the window's sensed corridor, times
	// taken from anchor tuples so every point binds inside the window.
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	subscribers := make([]*subscriber, cfg.Subscribers)
	for i := range subscribers {
		w := i % cfg.Windows
		pts := make([]query.Request, cfg.RoutePoints)
		for j := range pts {
			anchor := wins[w][rng.Intn(len(wins[w]))]
			pts[j] = query.Request{
				T:         anchor.T,
				X:         anchor.X + rng.NormFloat64()*cfg.JitterSigma,
				Y:         anchor.Y + rng.NormFloat64()*cfg.JitterSigma,
				Pollutant: tuple.CO2,
			}
		}
		h, err := eng.Subscribe(ctx, tuple.CO2, pts)
		if err != nil {
			return nil, fmt.Errorf("bench: subscriber %d: %w", i, err)
		}
		defer h.Close()
		s := &subscriber{window: w, handle: h, vector: make([]subs.PointValue, cfg.RoutePoints)}
		select {
		case ev := <-h.Events(): // initial full vector (resync, seq 1)
			s.apply(ev)
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("bench: subscriber %d never received its initial vector", i)
		}
		subscribers[i] = s
	}
	statsBefore := eng.Subscriptions().Stats()

	encodedLen := func(p wire.Push) (int, error) {
		b, err := wire.Binary.Encode(p)
		if err != nil {
			return 0, err
		}
		return len(b), nil
	}

	var latencies []float64
	for r := 0; r < cfg.Rounds; r++ {
		w := r % cfg.Windows
		chunk := chunks[w][1+r/cfg.Windows]
		t0 := time.Now()
		if err := ingest(chunk); err != nil {
			return nil, fmt.Errorf("bench: round %d: %w", r, err)
		}
		for _, s := range subscribers {
			if s.window != w {
				continue
			}
			select {
			case ev := <-s.handle.Events():
				latencies = append(latencies, float64(time.Since(t0).Microseconds())/1000)
				n, err := encodedLen(subs.PushFromEvent(s.handle.ID(), ev))
				if err != nil {
					return nil, err
				}
				res.PushedFrames++
				res.PushedBytes += n
				s.apply(ev)
			case <-time.After(15 * time.Second):
				// A rebuild that moved no subscribed value pushes nothing;
				// record it rather than failing the run.
				res.MissedPushes++
			}
		}
		// The polling baseline transfers every subscriber's full route
		// vector this round, changed or not.
		for _, s := range subscribers {
			n, err := encodedLen(s.fullVector(uint64(r + 1)))
			if err != nil {
				return nil, err
			}
			res.PolledBytes += n
		}
	}

	eng.Subscriptions().Wait()
	stats := eng.Subscriptions().Stats()
	res.ReEvals = stats.ReEvals - statsBefore.ReEvals
	res.ReEvalsAvoided = stats.Avoided - statsBefore.Avoided
	res.PointReEvals = stats.PointReEvals - statsBefore.PointReEvals
	res.DeltaPoints = stats.DeltaPoints - statsBefore.DeltaPoints
	res.PushSamples = len(latencies)
	res.PushLatencyP50Ms = percentile(latencies, 0.50)
	res.PushLatencyP99Ms = percentile(latencies, 0.99)
	if res.PolledBytes > 0 {
		res.PushedOverPolled = float64(res.PushedBytes) / float64(res.PolledBytes)
	}
	return res, nil
}

// percentile returns the p-quantile (0 < p <= 1) of values, by the
// nearest-rank method; 0 for an empty set.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// PrintSubs renders the benchmark result as a table.
func PrintSubs(w io.Writer, res *SubsResult) {
	fmt.Fprintln(w, "# PR-6: push subscriptions vs polling (closed loop)")
	fmt.Fprintf(w, "subscribers %d, %d-point routes over %d windows, %d ingest rounds, %d tuples\n",
		res.Config.Subscribers, res.Config.RoutePoints, res.Config.Windows, res.Config.Rounds, res.TuplesIngested)
	fmt.Fprintf(w, "%-28s %12.3f\n", "push latency p50 (ms)", res.PushLatencyP50Ms)
	fmt.Fprintf(w, "%-28s %12.3f\n", "push latency p99 (ms)", res.PushLatencyP99Ms)
	fmt.Fprintf(w, "%-28s %12d\n", "pushed frames", res.PushedFrames)
	fmt.Fprintf(w, "%-28s %12d\n", "pushed bytes", res.PushedBytes)
	fmt.Fprintf(w, "%-28s %12d\n", "polled bytes (baseline)", res.PolledBytes)
	fmt.Fprintf(w, "%-28s %12.4f\n", "pushed/polled", res.PushedOverPolled)
	fmt.Fprintf(w, "%-28s %12d\n", "re-evals", res.ReEvals)
	fmt.Fprintf(w, "%-28s %12d\n", "re-evals avoided", res.ReEvalsAvoided)
	fmt.Fprintf(w, "%-28s %12d\n", "point re-evals", res.PointReEvals)
	fmt.Fprintf(w, "%-28s %12d\n", "delta points", res.DeltaPoints)
	if res.MissedPushes > 0 {
		fmt.Fprintf(w, "%-28s %12d\n", "missed pushes", res.MissedPushes)
	}
}
