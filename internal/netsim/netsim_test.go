package netsim

import (
	"math"
	"sync"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := GPRS().Validate(); err != nil {
		t.Errorf("GPRS invalid: %v", err)
	}
	if err := ThreeG().Validate(); err != nil {
		t.Errorf("3G invalid: %v", err)
	}
	bad := []LinkConfig{
		{RTTSeconds: -1, UplinkBytesPerSec: 1, DownlinkBytesPerSec: 1},
		{UplinkBytesPerSec: 0, DownlinkBytesPerSec: 1},
		{UplinkBytesPerSec: 1, DownlinkBytesPerSec: 0},
		{UplinkBytesPerSec: 1, DownlinkBytesPerSec: 1, OverheadBytes: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := NewLink(LinkConfig{}); err == nil {
		t.Error("NewLink should validate")
	}
}

func TestExchangeAccounting(t *testing.T) {
	cfg := LinkConfig{
		Name:                "test",
		RTTSeconds:          1,
		UplinkBytesPerSec:   100,
		DownlinkBytesPerSec: 200,
		OverheadBytes:       10,
	}
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur, err := l.Exchange(90, 190)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + (90+10)/100 + (190+10)/200 = 1 + 1 + 1 = 3.
	if math.Abs(dur-3) > 1e-12 {
		t.Errorf("duration = %v, want 3", dur)
	}
	st := l.Stats()
	if st.SentBytes != 100 || st.ReceivedBytes != 200 || st.Exchanges != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.SimSeconds-3) > 1e-12 {
		t.Errorf("SimSeconds = %v", st.SimSeconds)
	}
}

func TestExchangeErrors(t *testing.T) {
	l, err := NewLink(GPRS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Exchange(-1, 0); err == nil {
		t.Error("negative request size should error")
	}
	if _, err := l.Exchange(0, -1); err == nil {
		t.Error("negative response size should error")
	}
}

func TestReset(t *testing.T) {
	l, err := NewLink(GPRS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Exchange(100, 100); err != nil {
		t.Fatal(err)
	}
	l.Reset()
	if st := l.Stats(); st != (Stats{}) {
		t.Errorf("after Reset stats = %+v", st)
	}
}

func TestGPRSSlowerThan3G(t *testing.T) {
	g, err := NewLink(GPRS())
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewLink(ThreeG())
	if err != nil {
		t.Fatal(err)
	}
	dg, _ := g.Exchange(500, 2000)
	du, _ := u.Exchange(500, 2000)
	if dg <= du {
		t.Errorf("GPRS %vs should be slower than 3G %vs", dg, du)
	}
}

func TestConcurrentExchanges(t *testing.T) {
	l, err := NewLink(GPRS())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.Exchange(10, 10); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Exchanges != n {
		t.Errorf("Exchanges = %d, want %d", st.Exchanges, n)
	}
	wantSent := int64(n * (10 + GPRS().OverheadBytes))
	if st.SentBytes != wantSent {
		t.Errorf("SentBytes = %d, want %d", st.SentBytes, wantSent)
	}
}
