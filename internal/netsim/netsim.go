// Package netsim models the cellular data link between the smartphone and
// the EnviroMeter server. The paper's bandwidth experiment (§4.2, Figure
// 7b) measures bytes transmitted/received by the mobile device and total
// query time over GPRS or 3G; this package reproduces that measurement
// with a deterministic link model: per-exchange round-trip latency,
// asymmetric throughput, and per-message protocol overhead.
//
// Time is simulated, not wall-clock, so experiments are exact and fast:
// a 100-tuple continuous query over simulated GPRS completes in
// microseconds of real time while reporting the seconds it would take on
// air.
package netsim

import (
	"errors"
	"fmt"
	"sync"
)

// LinkConfig describes a cellular bearer.
type LinkConfig struct {
	// Name labels the bearer in reports ("gprs", "3g").
	Name string
	// RTTSeconds is the round-trip latency of one exchange.
	RTTSeconds float64
	// UplinkBytesPerSec and DownlinkBytesPerSec are sustained throughputs.
	UplinkBytesPerSec   float64
	DownlinkBytesPerSec float64
	// OverheadBytes is the per-message protocol overhead (IP + TCP +
	// transport framing) added to every request and every response.
	OverheadBytes int
}

// Validate checks the configuration.
func (c LinkConfig) Validate() error {
	if c.RTTSeconds < 0 {
		return fmt.Errorf("netsim: negative RTT %v", c.RTTSeconds)
	}
	if c.UplinkBytesPerSec <= 0 || c.DownlinkBytesPerSec <= 0 {
		return errors.New("netsim: throughput must be positive")
	}
	if c.OverheadBytes < 0 {
		return errors.New("netsim: negative overhead")
	}
	return nil
}

// GPRS returns a typical GPRS (2.5G) bearer: ~600 ms RTT, ~5 KB/s up,
// ~10 KB/s down, and 120 bytes of per-message protocol overhead (IP + TCP
// plus the minimal HTTP framing a 2013-era smartphone client used). This
// is the default bearer for the Figure 7(b) reproduction: the paper demos
// over "GPRS or 3G data services".
func GPRS() LinkConfig {
	return LinkConfig{
		Name:                "gprs",
		RTTSeconds:          0.6,
		UplinkBytesPerSec:   5 * 1024,
		DownlinkBytesPerSec: 10 * 1024,
		OverheadBytes:       120,
	}
}

// ThreeG returns a typical UMTS bearer: ~150 ms RTT, ~48 KB/s up,
// ~175 KB/s down.
func ThreeG() LinkConfig {
	return LinkConfig{
		Name:                "3g",
		RTTSeconds:          0.15,
		UplinkBytesPerSec:   48 * 1024,
		DownlinkBytesPerSec: 175 * 1024,
		OverheadBytes:       120,
	}
}

// Stats accumulates what the mobile device observed on the link — the
// quantities Figure 7(b) plots.
type Stats struct {
	// SentBytes and ReceivedBytes include protocol overhead.
	SentBytes     int64
	ReceivedBytes int64
	// Exchanges counts request/response round trips.
	Exchanges int64
	// SimSeconds is the total simulated air time.
	SimSeconds float64
}

// Link is a simulated bearer accumulating Stats. It is safe for concurrent
// use.
type Link struct {
	cfg LinkConfig

	mu    sync.Mutex
	stats Stats
}

// NewLink creates a link with the given bearer configuration.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{cfg: cfg}, nil
}

// Config returns the bearer configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Exchange accounts one request/response round trip with the given payload
// sizes (codec bytes, excluding protocol overhead) and returns the
// simulated duration of the exchange in seconds.
func (l *Link) Exchange(requestBytes, responseBytes int) (float64, error) {
	if requestBytes < 0 || responseBytes < 0 {
		return 0, fmt.Errorf("netsim: negative payload size (%d, %d)", requestBytes, responseBytes)
	}
	up := requestBytes + l.cfg.OverheadBytes
	down := responseBytes + l.cfg.OverheadBytes
	dur := l.cfg.RTTSeconds +
		float64(up)/l.cfg.UplinkBytesPerSec +
		float64(down)/l.cfg.DownlinkBytesPerSec

	l.mu.Lock()
	l.stats.SentBytes += int64(up)
	l.stats.ReceivedBytes += int64(down)
	l.stats.Exchanges++
	l.stats.SimSeconds += dur
	l.mu.Unlock()
	return dur, nil
}

// Stats returns a snapshot of the accumulated counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Reset zeroes the counters (between experiment arms).
func (l *Link) Reset() {
	l.mu.Lock()
	l.stats = Stats{}
	l.mu.Unlock()
}
