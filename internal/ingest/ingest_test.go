package ingest

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/tuple"
)

func mkData(n int, dt float64) tuple.Batch {
	b := make(tuple.Batch, n)
	for i := range b {
		b[i] = tuple.Raw{T: float64(i) * dt, S: 400}
	}
	return b
}

func TestNewReplayerValidation(t *testing.T) {
	if _, err := NewReplayer(mkData(5, 10), 0); err == nil {
		t.Error("zero batch seconds should error")
	}
	unsorted := tuple.Batch{{T: 10}, {T: 5}}
	if _, err := NewReplayer(unsorted, 10); err == nil {
		t.Error("unsorted data should error")
	}
}

func TestReplayerBatching(t *testing.T) {
	// 10 tuples 10 s apart; 30 s batches → batches of 3,3,3,1.
	r, err := NewReplayer(mkData(10, 10), 30)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	total := 0
	for {
		b, ok := r.Next()
		if !ok {
			break
		}
		sizes = append(sizes, len(b))
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("replayed %d tuples, want 10", total)
	}
	want := []int{3, 3, 3, 1}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", sizes, want)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestReplayerEmptyData(t *testing.T) {
	r, err := NewReplayer(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("empty replayer should be exhausted immediately")
	}
}

// collectSink records ingested batches; it can fail on demand.
type collectSink struct {
	batches []tuple.Batch
	failOn  int // 1-based batch index to reject (0 = never)
	calls   int
}

func (c *collectSink) Ingest(b tuple.Batch) error {
	c.calls++
	if c.failOn != 0 && c.calls == c.failOn {
		return errors.New("sink failure injected")
	}
	c.batches = append(c.batches, b.Clone())
	return nil
}

func TestServiceValidation(t *testing.T) {
	sink := &collectSink{}
	if _, err := NewService(nil, sink, Config{}); err == nil {
		t.Error("nil source should error")
	}
	r, _ := NewReplayer(mkData(1, 1), 1)
	if _, err := NewService(r, nil, Config{}); err == nil {
		t.Error("nil sink should error")
	}
}

func TestServicePumpsEverything(t *testing.T) {
	r, err := NewReplayer(mkData(100, 5), 60)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	svc, err := NewService(r, sink, Config{}) // no pacing
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Tuples != 100 || st.Rejected != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LastStreamT != 495 {
		t.Errorf("LastStreamT = %v, want 495", st.LastStreamT)
	}
	total := 0
	for _, b := range sink.batches {
		total += len(b)
	}
	if total != 100 {
		t.Errorf("sink received %d tuples", total)
	}
}

func TestServiceSkipsRejectedBatches(t *testing.T) {
	r, err := NewReplayer(mkData(90, 10), 100) // 9 batches of 10
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{failOn: 2}
	svc, err := NewService(r, sink, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if st.Tuples != 80 {
		t.Errorf("Tuples = %d, want 80 (one 10-tuple batch dropped)", st.Tuples)
	}
}

func TestServiceCancellation(t *testing.T) {
	// Real-time pacing (speedup 1) with 60 s gaps would run for minutes;
	// cancellation must interrupt the sleep promptly.
	r, err := NewReplayer(mkData(100, 60), 60)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	svc, err := NewService(r, sink, Config{Speedup: 1, BatchGapWall: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = svc.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancellation did not interrupt pacing sleep")
	}
}

func TestServicePacingSpeedsUp(t *testing.T) {
	// 10 batches spaced 60 stream-seconds apart at speedup 6000 →
	// ~10 ms per gap, so the run takes roughly 90 ms, not 10 minutes.
	r, err := NewReplayer(mkData(10, 60), 60)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	svc, err := NewService(r, sink, Config{Speedup: 6000})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Errorf("paced run took %v, expected well under a second", elapsed)
	}
	if svc.Stats().Tuples != 10 {
		t.Errorf("Tuples = %d", svc.Stats().Tuples)
	}
}

func TestServiceBatchGapCap(t *testing.T) {
	// An enormous stream gap must be capped by BatchGapWall.
	data := tuple.Batch{{T: 0, S: 1}, {T: 1e9, S: 1}}
	r, err := NewReplayer(data, 10)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	svc, err := NewService(r, sink, Config{Speedup: 1, BatchGapWall: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("BatchGapWall cap not applied")
	}
}
