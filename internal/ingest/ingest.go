// Package ingest implements the streaming ingestion pipeline of the
// EnviroMeter architecture: the path from the community-driven sensing
// fleet into the server's raw-tuple database (Figure 1, left). Buses
// upload their samples in small batches as they drive; the service
// validates and appends each batch, invalidating affected model covers,
// and keeps counters an operator would watch.
//
// A Replayer adapts a recorded (or simulated) dataset into that batch
// stream, optionally faster than real time — how the demo replayed a
// month of lausanne-data in minutes.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/tuple"
)

// Source yields raw-tuple batches in non-decreasing stream-time order.
type Source interface {
	// Next returns the next batch. ok is false when the source is
	// exhausted. An empty batch with ok true is allowed (a reporting
	// period with no samples).
	Next() (batch tuple.Batch, ok bool)
}

// Sink consumes validated batches (implemented by server.Engine.Ingest).
type Sink interface {
	Ingest(b tuple.Batch) error
}

// Replayer is a Source that cuts a recorded dataset into batches covering
// BatchSeconds of stream time each — the cadence at which a bus flushes
// its sample buffer.
type Replayer struct {
	data         tuple.Batch
	batchSeconds float64
	pos          int
}

// NewReplayer returns a replayer over data, which must be sorted by time.
func NewReplayer(data tuple.Batch, batchSeconds float64) (*Replayer, error) {
	if batchSeconds <= 0 {
		return nil, fmt.Errorf("ingest: batch seconds %v, want > 0", batchSeconds)
	}
	if !data.SortedByTime() {
		return nil, errors.New("ingest: replay data must be time sorted")
	}
	return &Replayer{data: data, batchSeconds: batchSeconds}, nil
}

// Next implements Source.
func (r *Replayer) Next() (tuple.Batch, bool) {
	if r.pos >= len(r.data) {
		return nil, false
	}
	start := r.pos
	cutoff := r.data[start].T + r.batchSeconds
	for r.pos < len(r.data) && r.data[r.pos].T < cutoff {
		r.pos++
	}
	return r.data[start:r.pos], true
}

// Remaining returns how many tuples have not been replayed yet.
func (r *Replayer) Remaining() int { return len(r.data) - r.pos }

// Stats counts what the service has processed.
type Stats struct {
	Batches     int64
	Tuples      int64
	Rejected    int64   // batches refused by validation/sink
	LastStreamT float64 // largest stream time ingested
}

// Config tunes a Service.
type Config struct {
	// Speedup is stream seconds per wall-clock second. 0 (or
	// +Inf-equivalent ≤ 0) means "as fast as possible" — no pacing, the
	// benchmark loading mode. 1 is real time; 3600 replays an hour per
	// second.
	Speedup float64
	// BatchGapWall bounds the wall-clock pause between batches when
	// pacing (protects tests from pathological sleeps). Default 1 s.
	BatchGapWall time.Duration
}

// Service pumps a Source into a Sink.
type Service struct {
	src  Source
	sink Sink
	cfg  Config

	mu    sync.Mutex
	stats Stats
}

// NewService builds a service. src and sink must be non-nil.
func NewService(src Source, sink Sink, cfg Config) (*Service, error) {
	if src == nil || sink == nil {
		return nil, errors.New("ingest: nil source or sink")
	}
	if cfg.BatchGapWall <= 0 {
		cfg.BatchGapWall = time.Second
	}
	return &Service{src: src, sink: sink, cfg: cfg}, nil
}

// Run pumps until the source is exhausted or ctx is canceled. It returns
// nil on clean exhaustion, ctx.Err() on cancellation. Sink errors on
// individual batches are counted (Rejected) and skipped: one bus
// uploading garbage must not stall the city's ingestion.
func (s *Service) Run(ctx context.Context) error {
	var lastT float64
	first := true
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		batch, ok := s.src.Next()
		if !ok {
			return nil
		}
		if len(batch) == 0 {
			continue
		}
		// Pace according to the stream-time gap since the last batch.
		if s.cfg.Speedup > 0 && !first {
			gap := (batch[0].T - lastT) / s.cfg.Speedup
			if wall := time.Duration(gap * float64(time.Second)); wall > 0 {
				if wall > s.cfg.BatchGapWall {
					wall = s.cfg.BatchGapWall
				}
				timer := time.NewTimer(wall)
				select {
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				case <-timer.C:
				}
			}
		}
		first = false
		lastT = batch[len(batch)-1].T

		err := s.sink.Ingest(batch)
		s.mu.Lock()
		s.stats.Batches++
		if err != nil {
			s.stats.Rejected++
		} else {
			s.stats.Tuples += int64(len(batch))
			if lastT > s.stats.LastStreamT {
				s.stats.LastStreamT = lastT
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
