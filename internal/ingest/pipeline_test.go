package ingest

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/tuple"
)

func pipeBatch(t0 float64, n int) tuple.Batch {
	b := make(tuple.Batch, n)
	for i := range b {
		b[i] = tuple.Raw{T: t0 + float64(i), X: 1, Y: 2, S: 400}
	}
	return b
}

// pipeSink records sink calls per pollutant.
type pipeSink struct {
	mu      sync.Mutex
	calls   int
	tuples  int
	byPol   map[tuple.Pollutant]int
	gate    chan struct{} // when non-nil, each call waits here
	entered chan struct{} // when non-nil, signals a call began
	err     error
}

func (c *pipeSink) sink(p tuple.Pollutant, b tuple.Batch) error {
	if c.entered != nil {
		c.entered <- struct{}{}
	}
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	c.tuples += len(b)
	if c.byPol == nil {
		c.byPol = make(map[tuple.Pollutant]int)
	}
	c.byPol[p] += len(b)
	return c.err
}

func (c *pipeSink) snapshot() (calls, tuples int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.tuples
}

func TestPipelineSubmitAppliesAndAcks(t *testing.T) {
	cs := &pipeSink{}
	p, err := NewPipeline(cs.sink, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Submit(context.Background(), tuple.CO2, pipeBatch(0, 5)); err != nil {
		t.Fatal(err)
	}
	calls, tuples := cs.snapshot()
	if calls != 1 || tuples != 5 {
		t.Fatalf("sink saw %d calls / %d tuples, want 1 / 5", calls, tuples)
	}
	st := p.Stats()
	if st.Submitted != 1 || st.Tuples != 5 || st.Appends != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestPipelineCoalesces blocks the worker inside the first append and
// piles up small uploads behind it: the next sink call must carry them
// all at once.
func TestPipelineCoalesces(t *testing.T) {
	cs := &pipeSink{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	p, err := NewPipeline(cs.sink, PipelineConfig{QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Submit(ctx, tuple.CO2, pipeBatch(0, 2)); err != nil {
			t.Errorf("first submit: %v", err)
		}
	}()
	<-cs.entered // the worker is inside the first append
	const piled = 6
	for i := 0; i < piled; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Submit(ctx, tuple.CO2, pipeBatch(float64(100+10*i), 2)); err != nil {
				t.Errorf("piled submit: %v", err)
			}
		}()
	}
	// Wait until every piled upload is queued, then release the worker.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Queued < piled+1 {
		if time.Now().After(deadline) {
			t.Fatalf("uploads never queued: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(cs.gate)
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	calls, tuples := cs.snapshot()
	if tuples != (piled+1)*2 {
		t.Fatalf("sink saw %d tuples, want %d", tuples, (piled+1)*2)
	}
	if calls != 2 {
		t.Fatalf("sink saw %d calls, want 2 (first append + one coalesced group)", calls)
	}
	if st := p.Stats(); st.Coalesced != piled-1 {
		t.Fatalf("Coalesced = %d, want %d", st.Coalesced, piled-1)
	}
}

// TestPipelineTrySubmitSaturation fills the queue while the worker is
// blocked and checks TrySubmit sheds with ErrSaturated.
func TestPipelineTrySubmitSaturation(t *testing.T) {
	cs := &pipeSink{gate: make(chan struct{}), entered: make(chan struct{}, 4)}
	p, err := NewPipeline(cs.sink, PipelineConfig{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		// First occupies the worker, second fills the depth-1 queue.
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Submit(ctx, tuple.CO2, pipeBatch(float64(10*i), 1)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}()
		if i == 0 {
			<-cs.entered
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Queued < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.TrySubmit(ctx, tuple.CO2, pipeBatch(100, 1)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("TrySubmit on full queue = %v, want ErrSaturated", err)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	close(cs.gate)
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineValidatesOnSubmit(t *testing.T) {
	cs := &pipeSink{}
	p, err := NewPipeline(cs.sink, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	bad := tuple.Batch{{T: -1, S: 400}}
	if err := p.Submit(context.Background(), tuple.CO2, bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if calls, _ := cs.snapshot(); calls != 0 {
		t.Fatalf("invalid batch reached the sink (%d calls)", calls)
	}
}

func TestPipelineSinkErrorReachesSubmitter(t *testing.T) {
	boom := errors.New("boom")
	cs := &pipeSink{err: boom}
	p, err := NewPipeline(cs.sink, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Submit(context.Background(), tuple.CO2, pipeBatch(0, 1)); !errors.Is(err, boom) {
		t.Fatalf("Submit = %v, want the sink error", err)
	}
	if st := p.Stats(); st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
}

// TestPipelineCloseDrains checks queued uploads are applied (and their
// submitters acknowledged) before Close returns, and that submits after
// Close fail.
func TestPipelineCloseDrains(t *testing.T) {
	cs := &pipeSink{}
	p, err := NewPipeline(cs.sink, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := p.Submit(ctx, tuple.CO2, pipeBatch(float64(10*i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, tuples := cs.snapshot(); tuples != 8 {
		t.Fatalf("sink saw %d tuples, want 8", tuples)
	}
	if err := p.Submit(ctx, tuple.CO2, pipeBatch(100, 1)); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPipelineClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}

// TestPipelinePerPollutantIsolation checks pollutants get independent
// queues and the sink sees each pollutant's tuples under its own key.
func TestPipelinePerPollutantIsolation(t *testing.T) {
	cs := &pipeSink{}
	p, err := NewPipeline(cs.sink, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		pol := pol
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := p.Submit(ctx, pol, pipeBatch(float64(10*i), 3)); err != nil {
					t.Errorf("%v submit: %v", pol, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		if cs.byPol[pol] != 15 {
			t.Errorf("%v: sink saw %d tuples, want 15", pol, cs.byPol[pol])
		}
	}
}
