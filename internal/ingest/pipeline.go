package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tuple"
)

// ErrSaturated is returned by a rejecting submit when the pollutant's
// ingest queue is full — the HTTP layer maps it to 429.
var ErrSaturated = errors.New("ingest: queue saturated")

// ErrPipelineClosed is returned by submits after Close.
var ErrPipelineClosed = errors.New("ingest: pipeline closed")

// ErrInvalidBatch marks a submission rejected by validation before it
// was queued — the caller's payload is at fault, not the pipeline (the
// HTTP layer maps it to 400, unlike sink I/O failures).
var ErrInvalidBatch = errors.New("ingest: invalid batch")

// OverflowPolicy decides what a Submit does when the pollutant's queue
// is full.
type OverflowPolicy int

const (
	// Block waits for queue space (or context cancellation) — the facade
	// default: a bulk loader self-paces against the store.
	Block OverflowPolicy = iota
	// Reject fails immediately with ErrSaturated — the server-edge
	// policy: an overloaded service sheds small bus uploads instead of
	// holding their connections open.
	Reject
)

// PipelineConfig tunes a Pipeline. The zero value is usable.
type PipelineConfig struct {
	// QueueDepth bounds the submissions queued (accepted but not yet
	// applied) per pollutant. 0 = 64.
	QueueDepth int
	// MaxBatchTuples caps how many tuples one coalesced store append may
	// carry. 0 = 4096.
	MaxBatchTuples int
	// Overflow is the Submit policy when the queue is full (TrySubmit
	// always rejects). Default Block.
	Overflow OverflowPolicy
}

// PipelineStats counts what the pipeline has processed.
type PipelineStats struct {
	// Submitted is the number of accepted submissions.
	Submitted int64
	// Tuples is the number of tuples in accepted submissions.
	Tuples int64
	// Appends is the number of sink calls (coalesced groups applied).
	Appends int64
	// Coalesced is the number of submissions that rode along in another
	// submission's append instead of paying their own.
	Coalesced int64
	// Rejected counts saturation rejections (ErrSaturated).
	Rejected int64
	// Errors counts sink failures (each may span several submissions).
	Errors int64
	// Queued is the current number of queued-but-unapplied submissions
	// across all pollutants.
	Queued int64
}

// submission is one accepted upload awaiting its append ack.
type submission struct {
	b    tuple.Batch
	errc chan error
}

// Pipeline is the asynchronous ingest path: a bounded queue per
// pollutant, drained by one worker each, which coalesces small uploads
// into larger sink appends. A submission is acknowledged only after the
// sink call covering it returns — with a durable store under the sink,
// only after its commit group is durable. Batches are validated on
// submit, so a coalesced append can only fail for reasons (I/O) that
// legitimately concern every upload in it.
type Pipeline struct {
	sink func(p tuple.Pollutant, b tuple.Batch) error
	cfg  PipelineConfig

	mu     sync.RWMutex // guards queues map and closed vs. channel sends
	queues map[tuple.Pollutant]chan submission
	closed bool
	wg     sync.WaitGroup

	submitted atomic.Int64
	tuples    atomic.Int64
	appends   atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	errors    atomic.Int64
	queued    atomic.Int64
}

// NewPipeline builds a pipeline draining into sink, which is called from
// one goroutine per pollutant and must be safe for concurrent use across
// pollutants.
func NewPipeline(sink func(p tuple.Pollutant, b tuple.Batch) error, cfg PipelineConfig) (*Pipeline, error) {
	if sink == nil {
		return nil, errors.New("ingest: nil pipeline sink")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBatchTuples <= 0 {
		cfg.MaxBatchTuples = 4096
	}
	return &Pipeline{
		sink:   sink,
		cfg:    cfg,
		queues: make(map[tuple.Pollutant]chan submission),
	}, nil
}

// Submit enqueues one upload for pol and blocks until the append
// covering it completes, returning that append's error. When the queue
// is full it follows the configured overflow policy. Cancelling ctx
// abandons the wait — the upload may still be applied.
func (p *Pipeline) Submit(ctx context.Context, pol tuple.Pollutant, b tuple.Batch) error {
	return p.submit(ctx, pol, b, p.cfg.Overflow)
}

// TrySubmit is Submit with the Reject policy regardless of
// configuration: a full queue fails fast with ErrSaturated. The
// server's HTTP ingest edge uses it to shed load as 429s.
func (p *Pipeline) TrySubmit(ctx context.Context, pol tuple.Pollutant, b tuple.Batch) error {
	return p.submit(ctx, pol, b, Reject)
}

func (p *Pipeline) submit(ctx context.Context, pol tuple.Pollutant, b tuple.Batch, policy OverflowPolicy) error {
	if len(b) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidBatch, err)
	}
	q, err := p.queue(pol)
	if err != nil {
		return err
	}
	sub := submission{b: b, errc: make(chan error, 1)} //bounded: one-shot result; the worker sends exactly once

	// The queued gauge rises before the send so it never undercounts (the
	// worker may drain the submission before the send's caller resumes).
	p.queued.Add(1)

	// The read lock serializes the channel send against Close's channel
	// close; the worker keeps draining until close, so a blocked send
	// always completes.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.queued.Add(-1)
		return ErrPipelineClosed
	}
	if policy == Reject {
		select {
		case q <- sub:
		default:
			p.mu.RUnlock()
			p.queued.Add(-1)
			p.rejected.Add(1)
			return ErrSaturated
		}
	} else {
		select {
		case q <- sub: //lockcheck:allow audited: the read lock only serializes against Close; the worker drains until close, so the send completes
		case <-ctx.Done():
			p.mu.RUnlock()
			p.queued.Add(-1)
			return ctx.Err()
		}
	}
	p.mu.RUnlock()
	p.submitted.Add(1)
	p.tuples.Add(int64(len(b)))

	select {
	case err := <-sub.errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queue resolves (lazily creating) pol's queue and worker.
func (p *Pipeline) queue(pol tuple.Pollutant) (chan submission, error) {
	p.mu.RLock()
	q, ok := p.queues[pol]
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return nil, ErrPipelineClosed
	}
	if ok {
		return q, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPipelineClosed
	}
	if q, ok = p.queues[pol]; ok {
		return q, nil
	}
	q = make(chan submission, p.cfg.QueueDepth)
	p.queues[pol] = q
	p.wg.Add(1)
	go p.worker(pol, q)
	return q, nil
}

// worker drains one pollutant's queue, coalescing whatever is already
// waiting — up to MaxBatchTuples — into a single sink append, then
// acknowledges every coalesced submission with that append's result.
func (p *Pipeline) worker(pol tuple.Pollutant, q chan submission) {
	defer p.wg.Done()
	for sub := range q {
		subs := []submission{sub}
		n := len(sub.b)
	coalesce:
		for n < p.cfg.MaxBatchTuples {
			select {
			case more, ok := <-q:
				if !ok {
					break coalesce
				}
				subs = append(subs, more)
				n += len(more.b)
			default:
				break coalesce
			}
		}
		b := subs[0].b
		if len(subs) > 1 {
			merged := make(tuple.Batch, 0, n)
			for _, s := range subs {
				merged = append(merged, s.b...)
			}
			b = merged
			p.coalesced.Add(int64(len(subs) - 1))
		}
		err := p.sink(pol, b)
		if err != nil {
			p.errors.Add(1)
		}
		p.appends.Add(1)
		p.queued.Add(-int64(len(subs)))
		for _, s := range subs {
			s.errc <- err
		}
	}
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() PipelineStats {
	return PipelineStats{
		Submitted: p.submitted.Load(),
		Tuples:    p.tuples.Load(),
		Appends:   p.appends.Load(),
		Coalesced: p.coalesced.Load(),
		Rejected:  p.rejected.Load(),
		Errors:    p.errors.Load(),
		Queued:    p.queued.Load(),
	}
}

// Close stops accepting submissions, drains everything already queued
// (each queued upload is still applied and acknowledged), and waits for
// the workers to exit.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}
