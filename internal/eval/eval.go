// Package eval provides the evaluation metrics of the paper's experiments
// — NRMSE for the accuracy comparison (Figure 6b) — together with general
// error statistics and the OSHA CO2 classification the EnviroMeter Android
// application displays ("an informative text indicating whether this value
// is acceptable according to the OSHA guidelines", §3).
package eval

import (
	"errors"
	"fmt"
	"math"
)

// Errors for malformed metric inputs.
var (
	ErrEmpty    = errors.New("eval: empty input")
	ErrMismatch = errors.New("eval: estimate/truth length mismatch")
)

// RMSE returns the root-mean-square error of est against truth.
func RMSE(est, truth []float64) (float64, error) {
	if len(est) == 0 {
		return 0, ErrEmpty
	}
	if len(est) != len(truth) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(est), len(truth))
	}
	var sse float64
	for i := range est {
		d := est[i] - truth[i]
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(est))), nil
}

// NRMSE returns the normalized root-mean-square error in percent, as
// plotted in Figure 6(b): RMSE divided by the range of the ground-truth
// values. For constant truth (zero range) it normalizes by |mean| instead,
// and returns an error if that is also zero.
func NRMSE(est, truth []float64) (float64, error) {
	rmse, err := RMSE(est, truth)
	if err != nil {
		return 0, err
	}
	min, max := truth[0], truth[0]
	var mean float64
	for _, v := range truth {
		min = math.Min(min, v)
		max = math.Max(max, v)
		mean += v
	}
	mean /= float64(len(truth))
	span := max - min
	if span == 0 {
		span = math.Abs(mean)
	}
	if span == 0 {
		return 0, errors.New("eval: cannot normalize against all-zero truth")
	}
	return 100 * rmse / span, nil
}

// MAE returns the mean absolute error.
func MAE(est, truth []float64) (float64, error) {
	if len(est) == 0 {
		return 0, ErrEmpty
	}
	if len(est) != len(truth) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(est), len(truth))
	}
	var sum float64
	for i := range est {
		sum += math.Abs(est[i] - truth[i])
	}
	return sum / float64(len(est)), nil
}

// MeanAbsPctOfRange returns the mean absolute error as a percentage of the
// given range span — the paper's "approximation error" metric for Ad-KMN's
// τn threshold.
func MeanAbsPctOfRange(est, truth []float64, span float64) (float64, error) {
	if span <= 0 {
		return 0, fmt.Errorf("eval: span %v, want > 0", span)
	}
	mae, err := MAE(est, truth)
	if err != nil {
		return 0, err
	}
	return 100 * mae / span, nil
}

// CO2Band classifies a CO2 concentration for user display, green-to-red as
// in the Android app's route markers.
type CO2Band int

// The bands follow common indoor-air-quality practice anchored on the OSHA
// 8-hour TWA permissible exposure limit of 5000 ppm referenced by the
// paper, with the IDLH at 40000 ppm.
const (
	// BandFresh is outdoor-like air (< 600 ppm).
	BandFresh CO2Band = iota
	// BandAcceptable is typical occupied-space air (< 1000 ppm).
	BandAcceptable
	// BandDrowsy is air associated with complaints of drowsiness (< 2500 ppm).
	BandDrowsy
	// BandPoor is air approaching the OSHA TWA limit (< 5000 ppm).
	BandPoor
	// BandHazardous exceeds the OSHA 8-hour TWA limit (≥ 5000 ppm).
	BandHazardous
)

// ClassifyCO2 returns the display band for a CO2 concentration in ppm.
func ClassifyCO2(ppm float64) CO2Band {
	switch {
	case ppm < 600:
		return BandFresh
	case ppm < 1000:
		return BandAcceptable
	case ppm < 2500:
		return BandDrowsy
	case ppm < 5000:
		return BandPoor
	default:
		return BandHazardous
	}
}

// String returns the user-facing label.
func (b CO2Band) String() string {
	switch b {
	case BandFresh:
		return "fresh"
	case BandAcceptable:
		return "acceptable"
	case BandDrowsy:
		return "drowsy"
	case BandPoor:
		return "poor"
	case BandHazardous:
		return "hazardous"
	default:
		return fmt.Sprintf("CO2Band(%d)", int(b))
	}
}

// Advice returns the informative text the app shows for the band,
// referencing the OSHA guideline the paper cites.
func (b CO2Band) Advice() string {
	switch b {
	case BandFresh:
		return "CO2 at outdoor background levels."
	case BandAcceptable:
		return "CO2 within typical occupied-space levels; acceptable per OSHA guidelines."
	case BandDrowsy:
		return "Elevated CO2; prolonged exposure may cause drowsiness."
	case BandPoor:
		return "High CO2, approaching the OSHA 8-hour exposure limit (5000 ppm)."
	case BandHazardous:
		return "CO2 exceeds the OSHA 8-hour exposure limit (5000 ppm); avoid prolonged exposure."
	default:
		return "Unknown CO2 level."
	}
}

// Color returns the marker color on the app's green→red scale as an RGB
// triple.
func (b CO2Band) Color() (r, g, bl uint8) {
	switch b {
	case BandFresh:
		return 0x2e, 0xcc, 0x40
	case BandAcceptable:
		return 0xa8, 0xd0, 0x2c
	case BandDrowsy:
		return 0xff, 0xc1, 0x07
	case BandPoor:
		return 0xff, 0x6d, 0x00
	case BandHazardous:
		return 0xd9, 0x1e, 0x18
	default:
		return 0x80, 0x80, 0x80
	}
}
