package eval

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("exact RMSE = %v, %v", got, err)
	}
	got, err = RMSE([]float64{3, 5}, []float64{0, 1}) // errors 3 and 4
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((9.0 + 16.0) / 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Errorf("mismatch: %v", err)
	}
}

func TestNRMSE(t *testing.T) {
	// Truth spans 0..10; constant error 1 → RMSE 1 → NRMSE 10%.
	truth := []float64{0, 5, 10}
	est := []float64{1, 6, 11}
	got, err := NRMSE(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("NRMSE = %v, want 10", got)
	}
	// Constant truth falls back to |mean|.
	got, err = NRMSE([]float64{9, 11}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("constant-truth NRMSE = %v, want 10", got)
	}
	if _, err := NRMSE([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero truth must error")
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, -1}, []float64{0, 0})
	if err != nil || got != 1 {
		t.Errorf("MAE = %v, %v", got, err)
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty should error")
	}
}

func TestMeanAbsPctOfRange(t *testing.T) {
	got, err := MeanAbsPctOfRange([]float64{465}, []float64{400}, 650)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("pct = %v, want 10", got)
	}
	if _, err := MeanAbsPctOfRange([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("zero span should error")
	}
}

func TestNRMSENonNegativeProperty(t *testing.T) {
	f := func(est, truth []float64) bool {
		n := len(est)
		if len(truth) < n {
			n = len(truth)
		}
		if n == 0 {
			return true
		}
		e, tr := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			e[i] = math.Mod(est[i], 1e6)
			tr[i] = math.Mod(truth[i], 1e6)
			if math.IsNaN(e[i]) {
				e[i] = 0
			}
			if math.IsNaN(tr[i]) {
				tr[i] = 0
			}
		}
		v, err := NRMSE(e, tr)
		if err != nil {
			return true // all-zero truth case
		}
		return v >= 0 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClassifyCO2(t *testing.T) {
	tests := []struct {
		ppm  float64
		want CO2Band
	}{
		{400, BandFresh},
		{599, BandFresh},
		{600, BandAcceptable},
		{999, BandAcceptable},
		{1000, BandDrowsy},
		{2499, BandDrowsy},
		{2500, BandPoor},
		{4999, BandPoor},
		{5000, BandHazardous},
		{40000, BandHazardous},
	}
	for _, tt := range tests {
		if got := ClassifyCO2(tt.ppm); got != tt.want {
			t.Errorf("ClassifyCO2(%v) = %v, want %v", tt.ppm, got, tt.want)
		}
	}
}

func TestBandStringsAndColors(t *testing.T) {
	bands := []CO2Band{BandFresh, BandAcceptable, BandDrowsy, BandPoor, BandHazardous}
	seen := map[string]bool{}
	for _, b := range bands {
		s := b.String()
		if s == "" || seen[s] {
			t.Errorf("band %d has empty/duplicate label %q", b, s)
		}
		seen[s] = true
		if b.Advice() == "" {
			t.Errorf("band %v has no advice", b)
		}
	}
	// The scale runs green → red: green channel decreases, red increases.
	rF, gF, _ := BandFresh.Color()
	rH, gH, _ := BandHazardous.Color()
	if !(rF < rH && gF > gH) {
		t.Errorf("color scale not green→red: fresh=(%d,%d) hazardous=(%d,%d)", rF, gF, rH, gH)
	}
	if CO2Band(99).String() != "CO2Band(99)" {
		t.Error("unknown band String")
	}
}
