package eval

import (
	"testing"

	"repro/internal/tuple"
)

func TestClassifyPollutantCO(t *testing.T) {
	cases := []struct {
		v    float64
		want CO2Band
	}{
		{0, BandFresh},
		{4.4, BandFresh},
		{4.5, BandAcceptable},
		{9.4, BandAcceptable},
		{9.5, BandDrowsy},
		{12.4, BandDrowsy},
		{12.5, BandPoor},
		{15.4, BandPoor},
		{15.5, BandHazardous},
		{100, BandHazardous},
	}
	for _, tt := range cases {
		if got := ClassifyPollutant(tuple.CO, tt.v); got != tt.want {
			t.Errorf("CO %v: %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestClassifyPollutantPM(t *testing.T) {
	cases := []struct {
		v    float64
		want CO2Band
	}{
		{10, BandFresh},
		{54, BandFresh},
		{55, BandAcceptable},
		{154, BandAcceptable},
		{155, BandDrowsy},
		{254, BandDrowsy},
		{255, BandPoor},
		{354, BandPoor},
		{355, BandHazardous},
	}
	for _, tt := range cases {
		if got := ClassifyPollutant(tuple.PM, tt.v); got != tt.want {
			t.Errorf("PM %v: %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestClassifyPollutantCO2Delegates(t *testing.T) {
	for _, v := range []float64{400, 800, 1500, 3000, 8000} {
		if got, want := ClassifyPollutant(tuple.CO2, v), ClassifyCO2(v); got != want {
			t.Errorf("CO2 %v: %v vs %v", v, got, want)
		}
	}
}

func TestClassifyPollutantUnknownRangeFractions(t *testing.T) {
	// Unknown pollutants fall back to range-fraction bands over the
	// pollutant's nominal [0, 1] range.
	p := tuple.Pollutant(9)
	cases := []struct {
		v    float64
		want CO2Band
	}{
		{0.1, BandFresh},
		{0.3, BandAcceptable},
		{0.5, BandDrowsy},
		{0.7, BandPoor},
		{0.9, BandHazardous},
	}
	for _, tt := range cases {
		if got := ClassifyPollutant(p, tt.v); got != tt.want {
			t.Errorf("unknown %v: %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestClassifyPollutantMonotone(t *testing.T) {
	// Bands must be monotone in concentration for every pollutant.
	for _, p := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		lo, hi := p.NormalRange()
		prev := BandFresh
		steps := 200
		for i := 0; i <= steps; i++ {
			v := lo + (hi-lo)*float64(i)/float64(steps)
			b := ClassifyPollutant(p, v)
			if b < prev {
				t.Fatalf("%v: band decreased at %v: %v -> %v", p, v, prev, b)
			}
			prev = b
		}
	}
}

func TestUnknownBandFallbacks(t *testing.T) {
	b := CO2Band(42)
	if b.Advice() != "Unknown CO2 level." {
		t.Errorf("unknown Advice = %q", b.Advice())
	}
	r, g, bl := b.Color()
	if r != 0x80 || g != 0x80 || bl != 0x80 {
		t.Errorf("unknown Color = %v,%v,%v, want gray", r, g, bl)
	}
	// Every defined band's color is distinct.
	seen := map[[3]uint8]bool{}
	for _, band := range []CO2Band{BandFresh, BandAcceptable, BandDrowsy, BandPoor, BandHazardous} {
		r, g, bl := band.Color()
		key := [3]uint8{r, g, bl}
		if seen[key] {
			t.Errorf("duplicate color for %v", band)
		}
		seen[key] = true
	}
}
