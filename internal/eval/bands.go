package eval

import "repro/internal/tuple"

// This file generalizes the CO2 display classification to the other
// pollutants the OpenSense buses carry (§2.2: "the sensor value could be
// any of the pollutants that are typically monitored: carbon dioxide,
// carbon monoxide, suspended particulate matter").

// ClassifyPollutant returns the display band for a concentration of the
// given pollutant, on the same five-band green-to-red scale as CO2.
//
// CO bands follow the EPA AQI breakpoints for 8-hour CO (ppm); PM bands
// follow the 24-hour PM10 breakpoints (µg/m³). Unknown pollutants
// classify conservatively by fraction of their normal range.
func ClassifyPollutant(p tuple.Pollutant, value float64) CO2Band {
	switch p {
	case tuple.CO2:
		return ClassifyCO2(value)
	case tuple.CO:
		switch {
		case value < 4.5:
			return BandFresh
		case value < 9.5:
			return BandAcceptable
		case value < 12.5:
			return BandDrowsy
		case value < 15.5:
			return BandPoor
		default:
			return BandHazardous
		}
	case tuple.PM:
		switch {
		case value < 55:
			return BandFresh
		case value < 155:
			return BandAcceptable
		case value < 255:
			return BandDrowsy
		case value < 355:
			return BandPoor
		default:
			return BandHazardous
		}
	default:
		lo, hi := p.NormalRange()
		f := (value - lo) / (hi - lo)
		switch {
		case f < 0.2:
			return BandFresh
		case f < 0.4:
			return BandAcceptable
		case f < 0.6:
			return BandDrowsy
		case f < 0.8:
			return BandPoor
		default:
			return BandHazardous
		}
	}
}
