package heatmap

import (
	"bytes"
	"image/png"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/kmeans"
	"repro/internal/tuple"
)

func testCover(t *testing.T) *core.Cover {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	w := make(tuple.Batch, 400)
	for i := range w {
		x, y := rng.Float64()*2000, rng.Float64()*2000
		// A gradient from ~420 to ~2000 ppm across the region so multiple
		// display bands appear.
		w[i] = tuple.Raw{T: rng.Float64() * 600, X: x, Y: y, S: 420 + 0.8*x}
	}
	cv, err := core.BuildCover(w, 0, 600, core.Config{Cluster: kmeans.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return cv
}

func region() geo.Rect {
	return geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 2000, Y: 2000}}
}

func TestFromCoverValidation(t *testing.T) {
	cv := testCover(t)
	if _, err := FromCover(nil, region(), 8, 8, 0); err == nil {
		t.Error("nil cover should error")
	}
	if _, err := FromCover(cv, region(), 0, 8, 0); err == nil {
		t.Error("zero cols should error")
	}
	if _, err := FromCover(cv, geo.Rect{}, 8, 8, 0); err == nil {
		t.Error("degenerate region should error")
	}
}

func TestGridValuesFollowGradient(t *testing.T) {
	cv := testCover(t)
	g, err := FromCover(cv, region(), 16, 16, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Values) != 256 {
		t.Fatalf("values = %d, want 256", len(g.Values))
	}
	// West edge (low x) must be lower than east edge (high x).
	west, err := g.At(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	east, err := g.At(15, 8)
	if err != nil {
		t.Fatal(err)
	}
	if west >= east {
		t.Errorf("gradient not reproduced: west %v, east %v", west, east)
	}
	min, max := g.MinMax()
	if min >= max {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestGridAtBounds(t *testing.T) {
	cv := testCover(t)
	g, err := FromCover(cv, region(), 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {4, 0}, {0, 4}} {
		if _, err := g.At(bad[0], bad[1]); err == nil {
			t.Errorf("At(%d,%d) should error", bad[0], bad[1])
		}
	}
}

func TestWritePNG(t *testing.T) {
	cv := testCover(t)
	g, err := FromCover(cv, region(), 32, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not a valid PNG: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 32 || b.Dy() != 24 {
		t.Errorf("image is %dx%d, want 32x24", b.Dx(), b.Dy())
	}
}

func TestWritePGM(t *testing.T) {
	cv := testCover(t)
	g, err := FromCover(cv, region(), 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P2\n8 4\n255\n") {
		t.Errorf("bad PGM header: %q", out[:20])
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+4 {
		t.Errorf("PGM has %d lines, want 7", len(lines))
	}
	for _, line := range lines[3:] {
		if got := len(strings.Fields(line)); got != 8 {
			t.Errorf("PGM row has %d values, want 8", got)
		}
	}
}

func TestMarkers(t *testing.T) {
	cv := testCover(t)
	ms, err := Markers(cv, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != cv.Size() {
		t.Fatalf("markers = %d, want %d", len(ms), cv.Size())
	}
	for i, m := range ms {
		if m.Band == "" {
			t.Errorf("marker %d has no band", i)
		}
		if m.Pos != cv.Regions[i].Centroid {
			t.Errorf("marker %d at %v, want centroid %v", i, m.Pos, cv.Regions[i].Centroid)
		}
	}
	if _, err := Markers(nil, 0); err == nil {
		t.Error("nil cover should error")
	}
}
