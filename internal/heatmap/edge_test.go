package heatmap

// Edge-case coverage for the rasterizer: empty/degenerate regions,
// single-cell grids, out-of-window evaluation times, and regions far
// outside the data bounds — the shapes a cluster scatter-gather can
// legitimately produce.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestFromCoverEmptyRegion(t *testing.T) {
	cv := testCover(t)
	// A point region (Min == Max) has zero area.
	pt := geo.Rect{Min: geo.Point{X: 5, Y: 5}, Max: geo.Point{X: 5, Y: 5}}
	if _, err := FromCover(cv, pt, 4, 4, 300); err == nil {
		t.Error("zero-area (point) region rasterized")
	}
	// A corridor degenerate in one axis also has zero area.
	line := geo.Rect{Min: geo.Point{X: 0, Y: 10}, Max: geo.Point{X: 100, Y: 10}}
	if _, err := FromCover(cv, line, 4, 4, 300); err == nil {
		t.Error("zero-area (line) region rasterized")
	}
	// An inverted region is invalid outright.
	inv := geo.Rect{Min: geo.Point{X: 10, Y: 10}, Max: geo.Point{X: 0, Y: 0}}
	if _, err := FromCover(cv, inv, 4, 4, 300); err == nil {
		t.Error("inverted region rasterized")
	}
}

func TestFromCoverSingleCellGrid(t *testing.T) {
	cv := testCover(t)
	g, err := FromCover(cv, region(), 1, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 1 || g.Rows != 1 || len(g.Values) != 1 {
		t.Fatalf("1x1 grid came back %dx%d with %d values", g.Cols, g.Rows, len(g.Values))
	}
	// The lone cell samples the region center.
	c := region().Center()
	want, err := cv.Interpolate(300, c.X, c.Y)
	if err != nil {
		t.Fatal(err)
	}
	if g.Values[0] != want {
		t.Fatalf("single cell = %v, center interpolation = %v", g.Values[0], want)
	}
	if v, err := g.At(0, 0); err != nil || v != want {
		t.Fatalf("At(0,0) = %v, %v", v, err)
	}
	min, max := g.MinMax()
	if min != want || max != want {
		t.Fatalf("MinMax of one cell = (%v, %v), want (%v, %v)", min, max, want, want)
	}
}

func TestGridAtOutsideBounds(t *testing.T) {
	cv := testCover(t)
	g, err := FromCover(cv, region(), 3, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {3, 0}, {0, 2}, {-1, -1}, {3, 2}} {
		if _, err := g.At(bad[0], bad[1]); err == nil {
			t.Errorf("At(%d,%d) on a 3x2 grid succeeded", bad[0], bad[1])
		}
	}
	// Every in-bounds cell is reachable.
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			if _, err := g.At(i, j); err != nil {
				t.Errorf("At(%d,%d): %v", i, j, err)
			}
		}
	}
}

// TestFromCoverOutOfWindowTime locks the extrapolation contract: a
// cover evaluated outside its validity window still rasterizes (the
// models extrapolate linearly) but every value stays clamped to the
// cover's physical range, so a stale heatmap can look dated yet never
// unphysical.
func TestFromCoverOutOfWindowTime(t *testing.T) {
	cv := testCover(t) // valid over [0, 600)
	for _, tt := range []float64{-600, 1e6} {
		g, err := FromCover(cv, region(), 8, 8, tt)
		if err != nil {
			t.Fatalf("t=%v: %v", tt, err)
		}
		for i, v := range g.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("t=%v: cell %d is %v", tt, i, v)
			}
			if cv.ValueLo < cv.ValueHi && (v < cv.ValueLo || v > cv.ValueHi) {
				t.Fatalf("t=%v: cell %d = %v escapes clamp [%v, %v]", tt, i, v, cv.ValueLo, cv.ValueHi)
			}
		}
	}
}

// TestFromCoverRegionOutsideData rasterizes a region far from every
// sample: nearest-centroid evaluation still answers (the cover has no
// spatial cutoff) and the clamp keeps the values physical.
func TestFromCoverRegionOutsideData(t *testing.T) {
	cv := testCover(t)
	far := geo.Rect{Min: geo.Point{X: 1e6, Y: 1e6}, Max: geo.Point{X: 1e6 + 100, Y: 1e6 + 100}}
	g, err := FromCover(cv, far, 2, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Values {
		if cv.ValueLo < cv.ValueHi && (v < cv.ValueLo || v > cv.ValueHi) {
			t.Fatalf("cell %d = %v escapes clamp [%v, %v]", i, v, cv.ValueLo, cv.ValueHi)
		}
	}
}

func TestWritePGMConstantGrid(t *testing.T) {
	// A constant grid has zero span; normalization must not divide by
	// zero and should emit level 0 everywhere.
	g := &Grid{
		Region: region(), Cols: 2, Rows: 2, T: 0,
		Values: []float64{7, 7, 7, 7},
	}
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P2\n2 2\n255\n") {
		t.Fatalf("bad PGM header:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[3:] {
		if strings.TrimSpace(line) != "0 0" {
			t.Fatalf("constant grid rendered %q, want zeros", line)
		}
	}
}

func TestMarkersNilAndEmpty(t *testing.T) {
	if _, err := Markers(nil, 0); err == nil {
		t.Error("nil cover produced markers")
	}
	if _, err := FromCover(nil, region(), 2, 2, 0); err == nil {
		t.Error("nil cover rasterized")
	}
}
