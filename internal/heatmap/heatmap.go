// Package heatmap renders pollutant heatmaps from a model cover — the
// programmatic equivalent of the EnviroMeter web interface's heatmap
// visualization (§3, Figure 5b), where "the emitting points are the
// centroids computed by the Ad-KMN algorithm with its pollution level" on
// a green-to-red scale.
package heatmap

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/geo"
)

// Grid is a rasterized heatmap: cell (i, j) covers a rectangle of the
// region, with Values[j*Cols+i] holding the interpolated concentration at
// the cell center.
type Grid struct {
	// Region is the geographic extent.
	Region geo.Rect
	// Cols and Rows are the raster dimensions.
	Cols, Rows int
	// T is the stream time the map was evaluated at.
	T float64
	// Values holds concentrations in row-major order, bottom row first
	// (south at index 0).
	Values []float64
}

// FromCover rasterizes the cover over region at stream time t.
func FromCover(cv *core.Cover, region geo.Rect, cols, rows int, t float64) (*Grid, error) {
	if cv == nil || cv.Size() == 0 {
		return nil, errors.New("heatmap: nil or empty cover")
	}
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("heatmap: grid %dx%d, want ≥ 1x1", cols, rows)
	}
	if !region.Valid() || region.Area() == 0 {
		return nil, fmt.Errorf("heatmap: degenerate region %v", region)
	}
	g := &Grid{Region: region, Cols: cols, Rows: rows, T: t,
		Values: make([]float64, cols*rows)}
	dx := (region.Max.X - region.Min.X) / float64(cols)
	dy := (region.Max.Y - region.Min.Y) / float64(rows)
	for j := 0; j < rows; j++ {
		y := region.Min.Y + (float64(j)+0.5)*dy
		for i := 0; i < cols; i++ {
			x := region.Min.X + (float64(i)+0.5)*dx
			v, err := cv.Interpolate(t, x, y)
			if err != nil {
				return nil, err
			}
			g.Values[j*cols+i] = v
		}
	}
	return g, nil
}

// At returns the value of cell (i, j).
func (g *Grid) At(i, j int) (float64, error) {
	if i < 0 || i >= g.Cols || j < 0 || j >= g.Rows {
		return 0, fmt.Errorf("heatmap: cell (%d,%d) outside %dx%d", i, j, g.Cols, g.Rows)
	}
	return g.Values[j*g.Cols+i], nil
}

// MinMax returns the smallest and largest cell values.
func (g *Grid) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range g.Values {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	return min, max
}

// WritePNG renders the grid as a PNG image on the app's green→red band
// scale. North is at the top of the image.
func (g *Grid) WritePNG(w io.Writer) error {
	img := image.NewRGBA(image.Rect(0, 0, g.Cols, g.Rows))
	for j := 0; j < g.Rows; j++ {
		for i := 0; i < g.Cols; i++ {
			v := g.Values[j*g.Cols+i]
			r, gr, b := eval.ClassifyCO2(v).Color()
			// Flip vertically: row 0 is south, image origin is north-west.
			img.SetRGBA(i, g.Rows-1-j, color.RGBA{R: r, G: gr, B: b, A: 0xFF})
		}
	}
	return png.Encode(w, img)
}

// WritePGM renders the grid as a portable graymap normalized to the value
// range — a dependency-free format convenient for golden-file tests and
// terminal tooling.
func (g *Grid) WritePGM(w io.Writer) error {
	min, max := g.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", g.Cols, g.Rows); err != nil {
		return err
	}
	for j := g.Rows - 1; j >= 0; j-- {
		for i := 0; i < g.Cols; i++ {
			v := g.Values[j*g.Cols+i]
			level := int(255 * (v - min) / span)
			sep := " "
			if i == g.Cols-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%d%s", level, sep); err != nil {
				return err
			}
		}
	}
	return nil
}

// CentroidMarker is one emitting point of the web UI: a cover centroid
// with its local pollution level and display band.
type CentroidMarker struct {
	Pos   geo.Point `json:"pos"`
	Value float64   `json:"value"`
	Band  string    `json:"band"`
}

// Markers returns the cover's centroids evaluated at time t — the emitting
// points of Figure 5(b).
func Markers(cv *core.Cover, t float64) ([]CentroidMarker, error) {
	if cv == nil || cv.Size() == 0 {
		return nil, errors.New("heatmap: nil or empty cover")
	}
	out := make([]CentroidMarker, cv.Size())
	for i, r := range cv.Regions {
		v := r.Model.Predict(t, r.Centroid.X, r.Centroid.Y)
		out[i] = CentroidMarker{
			Pos:   r.Centroid,
			Value: v,
			Band:  eval.ClassifyCO2(v).String(),
		}
	}
	return out, nil
}
