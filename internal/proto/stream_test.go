package proto_test

// Push-stream tests: DialStream against a real engine served over TCP —
// subscribe ack, initial resync push, an incremental delta after an
// ingest, refusal of bad subscriptions, and teardown in both
// directions (client Close, server Close).

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// startStreamServer is startServer with the engine handle exposed, so
// stream tests can ingest server-side.
func startStreamServer(t *testing.T) (*server.Engine, *proto.Server, string) {
	t.Helper()
	eng := newEngine(t)
	t.Cleanup(func() { eng.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := proto.Serve(ln, eng, proto.ServerConfig{})
	t.Cleanup(func() { s.Close() })
	return eng, s, ln.Addr().String()
}

func recvFrame(t *testing.T, st *proto.Stream) wire.Message {
	t.Helper()
	select {
	case m, ok := <-st.C():
		if !ok {
			t.Fatalf("stream closed early: %v", st.Err())
		}
		return m
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a pushed frame")
	}
	return nil
}

func TestStreamSubscribePush(t *testing.T) {
	eng, _, addr := startStreamServer(t)

	st, err := proto.DialStream(addr, proto.ServerConfig{}, wire.SubscribeRequest{
		Pollutant: tuple.CO2,
		Points: []wire.SubPoint{
			{T: 600, X: 500, Y: 500},
			{T: 600, X: 1500, Y: 1500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ack, ok := st.Ack().(wire.SubscribeAck)
	if !ok || ack.Points != 2 || ack.ID == 0 {
		t.Fatalf("ack = %#v, want a SubscribeAck for 2 points", st.Ack())
	}

	first, ok := recvFrame(t, st).(wire.Push)
	if !ok || !first.Resync || first.Seq != 1 || len(first.Points) != 2 || first.ID != ack.ID {
		t.Fatalf("first frame = %#v, want the seq-1 resync push", first)
	}

	// Ingest into the subscribed window: a delta frame arrives.
	var b tuple.Batch
	for i := 0; i < 200; i++ {
		b = append(b, tuple.Raw{T: 300 + float64(i), X: float64(10 * i % 2000), Y: float64(7 * i % 2000), S: 900})
	}
	if err := eng.Ingest(context.Background(), tuple.CO2, b); err != nil {
		t.Fatal(err)
	}
	delta, ok := recvFrame(t, st).(wire.Push)
	if !ok || delta.Resync || delta.Seq <= first.Seq || len(delta.Points) == 0 {
		t.Fatalf("delta frame = %#v", delta)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRefused(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{})
	// Unserved pollutant: the server answers the subscribe with an
	// ErrorResponse, which DialStream surfaces as a refusal.
	_, err := proto.DialStream(addr, proto.ServerConfig{}, wire.SubscribeRequest{
		Pollutant: tuple.PM,
		Points:    []wire.SubPoint{{T: 600, X: 1, Y: 1}},
	})
	if err == nil {
		t.Fatal("subscription for an unserved pollutant was accepted")
	}
}

func TestStreamServerClose(t *testing.T) {
	_, srv, addr := startStreamServer(t)
	st, err := proto.DialStream(addr, proto.ServerConfig{}, wire.SubscribeRequest{
		Pollutant: tuple.CO2,
		Points:    []wire.SubPoint{{T: 600, X: 1, Y: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recvFrame(t, st) // initial resync

	// Server shutdown must not hang on the open stream and must end the
	// client's frame channel.
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung on an open push stream")
	}
	for {
		select {
		case _, ok := <-st.C():
			if !ok {
				return
			}
		case <-time.After(10 * time.Second):
			t.Fatal("client frame channel never closed after server Close")
		}
	}
}
