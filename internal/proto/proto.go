// Package proto runs the EnviroMeter wire protocol over real TCP
// connections. The demo's smartphones spoke to the server over GPRS/3G
// data services; this package is the deployment-grade transport those
// clients would use: length-prefixed frames carrying wire-codec messages,
// one request/response exchange at a time per connection, with deadlines
// so a stalled radio link cannot wedge the server.
//
// Frame layout (little endian):
//
//	length  uint32   payload byte count (not including this prefix)
//	payload []byte   one wire-codec message
//
// The framing is codec-agnostic: binary for production, JSON for
// debugging.
package proto

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// MaxFrameBytes bounds a single message. The largest legitimate message is
// a model response for a MaxK-region cover (a few KB); 1 MiB leaves two
// orders of magnitude of headroom while stopping hostile length prefixes.
const MaxFrameBytes = 1 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameBytes.
var ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame. io.EOF is returned unwrapped
// when the stream ends cleanly at a frame boundary.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("proto: truncated frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("proto: truncated frame payload: %w", err)
	}
	return payload, nil
}

// Handler answers protocol requests (implemented by server.Engine).
type Handler interface {
	HandleMessage(req wire.Message) wire.Message
}

// CtxHandler is an optional Handler extension. When the handler
// implements it, the serve loop calls HandleMessageCtx with a context
// bound to the server's lifetime, so long-running handlers (scatter-
// gather in the cluster router, store waits) stop when the server shuts
// down instead of finishing into a closed connection.
type CtxHandler interface {
	HandleMessageCtx(ctx context.Context, req wire.Message) wire.Message
}

// ServerConfig tunes the TCP server.
type ServerConfig struct {
	// Codec decodes requests and encodes responses (default wire.Binary).
	Codec wire.Codec
	// IdleTimeout closes connections with no request for this long
	// (default 2 minutes). Mobile clients reconnect cheaply; dangling
	// radio sessions must not pin server resources.
	IdleTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Codec == nil {
		c.Codec = wire.Binary
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	return c
}

// Server accepts TCP connections and serves the wire protocol.
type Server struct {
	cfg     ServerConfig
	handler Handler
	ln      net.Listener

	// baseCtx is the root context handed to ctx-aware handlers; Close
	// cancels it so in-flight handlers unwind during shutdown.
	baseCtx  context.Context
	baseStop context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on ln. It returns immediately; Close stops it.
func Serve(ln net.Listener, h Handler, cfg ServerConfig) *Server {
	//ctxcheck:allow the server owns the root context; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg.withDefaults(),
		handler:  h,
		ln:       ln,
		baseCtx:  ctx,
		baseStop: cancel,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address (for clients in tests).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	w := &frameWriter{conn: conn, timeout: s.cfg.IdleTimeout, codec: s.cfg.Codec}
	var stops []func()
	defer func() {
		conn.Close()
		for _, stop := range stops {
			stop()
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	streamer, canStream := s.handler.(Streamer)
	ctxStreamer, canStreamCtx := s.handler.(CtxStreamer)
	ctxHandler, canCtx := s.handler.(CtxHandler)
	for {
		// A connection carrying a push stream idles legitimately between
		// pushes; only request/response connections get the idle timeout.
		deadline := time.Now().Add(s.cfg.IdleTimeout)
		if len(stops) > 0 {
			deadline = time.Time{}
		}
		if err := conn.SetReadDeadline(deadline); err != nil {
			return
		}
		payload, err := ReadFrame(conn)
		if err != nil {
			return // EOF, timeout, or garbage: drop the connection
		}
		req, err := s.cfg.Codec.Decode(payload)
		var resp wire.Message
		if err != nil {
			resp = wire.ErrorResponse{Msg: "malformed request: " + err.Error()}
		} else {
			var (
				ack      wire.Message
				run      func(emit func(wire.Message) error)
				stop     func()
				streamOK bool
			)
			if canStreamCtx {
				ack, run, stop, streamOK = ctxStreamer.HandleStreamCtx(s.baseCtx, req)
			} else if canStream {
				ack, run, stop, streamOK = streamer.HandleStream(req)
			}
			if streamOK {
				stops = append(stops, stop)
				if err := w.write(ack); err != nil {
					return
				}
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					run(w.write)
					// Stream over (server side ended it, or a push
					// write failed): close the connection so the
					// client sees EOF instead of silence.
					conn.Close()
				}()
				continue
			}
			if canCtx {
				resp = ctxHandler.HandleMessageCtx(s.baseCtx, req)
			} else {
				resp = s.handler.HandleMessage(req)
			}
		}
		if err := w.write(resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.baseStop()
	s.wg.Wait()
	return err
}

// Client is a TCP protocol client. It satisfies client.Transport, so the
// mobile-object strategies (baseline, model-cache) run unchanged over a
// real network. It is safe for concurrent use; exchanges are serialized
// on the single connection, matching the one-outstanding-request radio
// behaviour the link model assumes.
type Client struct {
	cfg ServerConfig // codec + timeout reused client-side

	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to an EnviroMeter TCP server.
func Dial(addr string, cfg ServerConfig) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	return &Client{cfg: cfg.withDefaults(), conn: conn}, nil
}

// Exchange performs one request/response round trip.
func (c *Client) Exchange(req wire.Message) (wire.Message, error) {
	payload, err := c.cfg.Codec.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("proto: encode request: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, errors.New("proto: client closed")
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.cfg.IdleTimeout)); err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, payload); err != nil {
		return nil, fmt.Errorf("proto: write: %w", err)
	}
	respPayload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("proto: read: %w", err)
	}
	resp, err := c.cfg.Codec.Decode(respPayload)
	if err != nil {
		return nil, fmt.Errorf("proto: decode response: %w", err)
	}
	return resp, nil
}

// Close closes the connection. Further Exchanges fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
