package proto_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/proto"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		if err := proto.WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := proto.ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
	if _, err := proto.ReadFrame(&buf); err != io.EOF {
		t.Errorf("want io.EOF at stream end, got %v", err)
	}
}

func TestFrameLimits(t *testing.T) {
	if err := proto.WriteFrame(io.Discard, make([]byte, proto.MaxFrameBytes+1)); !errors.Is(err, proto.ErrFrameTooLarge) {
		t.Errorf("oversize write: %v", err)
	}
	// A hostile length prefix must be rejected without allocating.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], math.MaxUint32)
	buf.Write(hdr[:])
	if _, err := proto.ReadFrame(&buf); !errors.Is(err, proto.ErrFrameTooLarge) {
		t.Errorf("hostile prefix: %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := proto.WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 1; cut < len(data); cut++ {
		if _, err := proto.ReadFrame(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d succeeded", cut)
		}
	}
}

// newEngine builds a small engine for protocol tests.
func newEngine(t *testing.T) *server.Engine {
	t.Helper()
	st := store.MustOpenMemory(3600)
	rng := rand.New(rand.NewSource(1))
	var b tuple.Batch
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*2000, rng.Float64()*2000
		b = append(b, tuple.Raw{T: rng.Float64() * 3600, X: x, Y: y, S: 430 + 0.05*x})
	}
	if err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	return server.NewEngine(st, core.Config{Cluster: kmeans.Config{Seed: 2}})
}

// startServer runs a protocol server on a loopback listener.
func startServer(t *testing.T, cfg proto.ServerConfig) (*proto.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := proto.Serve(ln, newEngine(t), cfg)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func TestClientServerQueryRoundTrip(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{})
	c, err := proto.Dial(addr, proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Exchange(wire.QueryRequest{T: 1800, X: 1000, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	qr, ok := resp.(wire.QueryResponse)
	if !ok {
		t.Fatalf("got %T", resp)
	}
	want := 430 + 0.05*1000
	if math.Abs(qr.Value-want) > 30 {
		t.Errorf("value = %v, want ~%v", qr.Value, want)
	}
}

func TestClientServerModelRoundTrip(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{})
	c, err := proto.Dial(addr, proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Exchange(wire.ModelRequest{T: 1800})
	if err != nil {
		t.Fatal(err)
	}
	mr, ok := resp.(wire.ModelResponse)
	if !ok {
		t.Fatalf("got %T", resp)
	}
	cv, err := wire.CoverFromModelResponse(mr)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() == 0 || !cv.ValidAt(1800) {
		t.Errorf("reconstructed cover size=%d", cv.Size())
	}
}

func TestServerErrorResponses(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{})
	c, err := proto.Dial(addr, proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Query outside any window.
	resp, err := c.Exchange(wire.QueryRequest{T: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(wire.ErrorResponse); !ok {
		t.Errorf("got %T, want ErrorResponse", resp)
	}
}

func TestServerSurvivesMalformedFrame(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{})
	// Send garbage on a raw connection; the server must drop it without
	// dying.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.WriteFrame(raw, []byte{0xFF, 0x00, 0x13}); err != nil {
		t.Fatal(err)
	}
	// The server answers malformed-but-framed requests with an error
	// message before deciding anything about the connection.
	payload, err := proto.ReadFrame(raw)
	if err != nil {
		t.Fatalf("expected an error response frame, got %v", err)
	}
	msg, err := wire.Binary.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.ErrorResponse); !ok {
		t.Fatalf("got %T, want ErrorResponse", msg)
	}
	raw.Close()

	// A fresh, well-behaved client still works.
	c, err := proto.Dial(addr, proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exchange(wire.QueryRequest{T: 1800, X: 100, Y: 100}); err != nil {
		t.Errorf("healthy client after garbage: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{})
	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := proto.Dial(addr, proto.ServerConfig{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				resp, err := c.Exchange(wire.QueryRequest{
					T: 1800, X: float64(i * 100), Y: float64(j * 50)})
				if err != nil {
					t.Error(err)
					return
				}
				if _, ok := resp.(wire.QueryResponse); !ok {
					t.Errorf("client %d: got %T", i, resp)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestClientIsATransport(t *testing.T) {
	// The TCP client slots into the mobile-object strategies unchanged:
	// the model-cache flow works end to end over a real socket.
	_, addr := startServer(t, proto.ServerConfig{})
	c, err := proto.Dial(addr, proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var transport client.Transport = c
	mc := client.NewModelCache(transport)
	qs := make([]query.Request, 20)
	for i := range qs {
		qs[i] = query.Request{T: 60 * float64(i), X: 500, Y: 500}
	}
	answers, err := client.RunContinuous(mc, qs)
	if err != nil {
		t.Fatal(err)
	}
	local := 0
	for _, a := range answers {
		if a.Local {
			local++
		}
	}
	if local != len(qs)-1 {
		t.Errorf("local answers = %d, want %d (one fetch)", local, len(qs)-1)
	}
}

func TestClientClosedExchangeFails(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{})
	c, err := proto.Dial(addr, proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exchange(wire.QueryRequest{}); err == nil {
		t.Error("exchange on closed client should fail")
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestServerCloseIdempotentAndFast(t *testing.T) {
	s, addr := startServer(t, proto.ServerConfig{IdleTimeout: time.Hour})
	// An idle connection must not block Close despite the long timeout.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		s.Close()
		s.Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close blocked on idle connection")
	}
}

func TestJSONCodecOverTCP(t *testing.T) {
	_, addr := startServer(t, proto.ServerConfig{Codec: wire.JSON})
	c, err := proto.Dial(addr, proto.ServerConfig{Codec: wire.JSON})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exchange(wire.QueryRequest{T: 1800, X: 700, Y: 700})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(wire.QueryResponse); !ok {
		t.Fatalf("got %T", resp)
	}
}

func TestClientServerBatchRoundTrip(t *testing.T) {
	// The whole batch path over real TCP: one frame out, one frame back,
	// per-item values and errors.
	_, addr := startServer(t, proto.ServerConfig{})
	c, err := proto.Dial(addr, proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Exchange(wire.BatchQueryRequest{Items: []wire.QueryRequest{
		{T: 1800, X: 1000, Y: 500},
		{T: 1e9, X: 0, Y: 0}, // beyond the data: per-item error
		{T: 1800, X: 200, Y: 300},
	}})
	if err != nil {
		t.Fatal(err)
	}
	br, ok := resp.(wire.BatchQueryResponse)
	if !ok {
		t.Fatalf("got %T: %+v", resp, resp)
	}
	if len(br.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(br.Items))
	}
	if br.Items[0].Err != "" || br.Items[2].Err != "" {
		t.Errorf("good items errored: %+v", br.Items)
	}
	if br.Items[1].Err == "" {
		t.Error("out-of-window item must carry its error")
	}
	if want := 430 + 0.05*1000; math.Abs(br.Items[0].Value-want) > 30 {
		t.Errorf("item 0 = %v, want ~%v", br.Items[0].Value, want)
	}
}
