package proto

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Streamer is an optional Handler extension for server push. When the
// handler implements it, every decoded request is offered to
// HandleStream first; returning ok opens a push stream on the
// connection: the server writes ack, then runs run on its own goroutine
// with an emit function that frames push messages onto the connection
// (safe to call concurrently with request/response traffic — frames
// never interleave). run should return when the stream ends or emit
// fails; the connection is closed when it does, and stop is called when
// the connection goes away for any reason.
type Streamer interface {
	HandleStream(req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool)
}

// CtxStreamer is the context-aware variant of Streamer. When the
// handler implements it, the serve loop passes a context bound to the
// server's lifetime, so subscriptions opened on behalf of a connection
// are cancelled when the server shuts down.
type CtxStreamer interface {
	HandleStreamCtx(ctx context.Context, req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool)
}

// streamQueueDepth buffers pushes decoded ahead of the consumer; beyond
// it the read loop applies backpressure to the TCP connection rather
// than queueing without bound.
const streamQueueDepth = 64

// frameWriter serializes frame writes on one connection so pushed
// frames and request responses never interleave mid-frame.
type frameWriter struct {
	conn    net.Conn
	timeout time.Duration
	codec   wire.Codec

	mu sync.Mutex
}

func (w *frameWriter) write(m wire.Message) error {
	out, err := w.codec.Encode(m)
	if err != nil {
		out, err = w.codec.Encode(wire.ErrorResponse{Msg: "internal encode error"})
		if err != nil {
			return err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.conn.SetWriteDeadline(time.Now().Add(w.timeout)); err != nil {
		return err
	}
	return WriteFrame(w.conn, out)
}

// Stream is the client side of a push stream: one dedicated connection
// carrying the subscribe exchange followed by pushed frames. Dedicate a
// connection per stream; Exchange traffic belongs on its own Client.
type Stream struct {
	cfg  ServerConfig
	conn net.Conn
	ack  wire.Message
	ch   chan wire.Message
	done chan struct{}

	mu     sync.Mutex
	err    error
	closed bool
}

// DialStream connects to addr, sends req, and — unless the server
// answers with an ErrorResponse — returns the stream with the server's
// ack. Pushed frames arrive on C until the stream fails or is closed.
func DialStream(addr string, cfg ServerConfig, req wire.Message) (*Stream, error) {
	cfg = cfg.withDefaults()
	payload, err := cfg.Codec.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("proto: encode request: %w", err)
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	if err := conn.SetDeadline(time.Now().Add(cfg.IdleTimeout)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := WriteFrame(conn, payload); err != nil {
		conn.Close()
		return nil, fmt.Errorf("proto: write: %w", err)
	}
	ackPayload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("proto: read ack: %w", err)
	}
	ack, err := cfg.Codec.Decode(ackPayload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("proto: decode ack: %w", err)
	}
	if e, ok := ack.(wire.ErrorResponse); ok {
		conn.Close()
		return nil, fmt.Errorf("proto: stream refused: %s", e.Msg)
	}
	// Pushes arrive whenever covers change; no idle deadline from here.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	st := &Stream{
		cfg:  cfg,
		conn: conn,
		ack:  ack,
		ch:   make(chan wire.Message, streamQueueDepth),
		done: make(chan struct{}), //bounded: signal-only; Close closes it, nothing sends
	}
	go st.readLoop()
	return st, nil
}

func (st *Stream) readLoop() {
	defer close(st.ch)
	for {
		payload, err := ReadFrame(st.conn)
		if err != nil {
			st.fail(fmt.Errorf("proto: stream read: %w", err))
			return
		}
		m, err := st.cfg.Codec.Decode(payload)
		if err != nil {
			st.fail(fmt.Errorf("proto: stream decode: %w", err))
			return
		}
		select {
		case st.ch <- m:
		case <-st.done:
			return
		}
	}
}

func (st *Stream) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.closed && st.err == nil {
		st.err = err
	}
}

// Ack returns the server's acknowledgment message.
func (st *Stream) Ack() wire.Message { return st.ack }

// C is the pushed-frame channel. It closes when the stream ends; Err
// then reports why (nil after a local Close).
func (st *Stream) C() <-chan wire.Message { return st.ch }

// Err reports the stream failure, if any, once C is closed.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Close tears the stream down. The server drops the subscription when
// the connection closes.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	close(st.done)
	st.mu.Unlock()
	return st.conn.Close()
}
