// Package load type-checks Go packages for the analyzer suite using
// only the standard library: package metadata comes from
// `go list -deps -test -json`, and every package (stdlib included) is
// type-checked from source. Dependencies are checked with
// IgnoreFuncBodies, so the cost of a load is one `go list` subprocess
// plus declaration-level type-checking of the import closure — a few
// seconds for this repository, with no network and no module downloads.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory.
	Dir  string
	Fset *token.FileSet
	// Files holds the package syntax. For in-module packages this
	// includes in-package _test.go files (external _test packages are
	// not loaded; the suite's invariants live in library and in-package
	// test code).
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg mirrors the `go list -json` fields consumed here.
type listPkg struct {
	ImportPath  string
	Dir         string
	Name        string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Imports     []string
	TestImports []string
	Module      *struct{ Path string }
	ForTest     string
	DepOnly     bool
	Error       *struct{ Err string }
}

// loader resolves and memoizes dependency packages.
type loader struct {
	fset     *token.FileSet
	universe map[string]*listPkg       // non-variant packages by import path
	deps     map[string]*types.Package // memoized declaration-level checks
	checking map[string]bool           // cycle guard
}

// Packages loads and type-checks the in-module packages matched by
// patterns (for example "./..."), with dir as the working directory of
// the `go list` subprocess.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-test", "-json"}, patterns...)
	raw, err := goList(dir, args)
	if err != nil {
		return nil, err
	}
	ld := newLoader()
	var targets []*listPkg
	for _, lp := range raw {
		if lp.ForTest != "" || strings.HasSuffix(lp.ImportPath, ".test") ||
			strings.Contains(lp.ImportPath, " ") {
			// Synthetic test variants; their real dependencies (testing,
			// etc.) appear as plain entries of their own.
			continue
		}
		ld.universe[lp.ImportPath] = lp
		if lp.Module != nil && !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	out := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		pkg, err := ld.checkTarget(lp, lp.TestGoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Dir loads the single package rooted at dir (every .go file in it,
// _test.go included, mirroring how Packages augments a target with its
// in-package tests), resolving imports through `go list`. It exists for
// analyzertest fixtures, which live under testdata/ where the go tool
// does not look; fixtures may import the standard library only.
func Dir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		files = append(files, filepath.Base(m))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	ld := newLoader()
	lp := &listPkg{ImportPath: dir, Dir: dir, GoFiles: files}
	// Parse once to discover imports, resolve them via go list, then
	// type-check for real.
	syntax, err := ld.parse(lp, nil)
	if err != nil {
		return nil, err
	}
	imports := map[string]bool{}
	for _, f := range syntax {
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(imports) > 0 {
		args := []string{"list", "-deps", "-json"}
		for imp := range imports {
			if imp != "unsafe" {
				args = append(args, imp)
			}
		}
		sort.Strings(args[3:])
		raw, err := goList(dir, args)
		if err != nil {
			return nil, err
		}
		for _, dep := range raw {
			ld.universe[dep.ImportPath] = dep
		}
	}
	return ld.checkTarget(lp, nil)
}

func newLoader() *loader {
	return &loader{
		fset:     token.NewFileSet(),
		universe: map[string]*listPkg{},
		deps:     map[string]*types.Package{},
		checking: map[string]bool{},
	}
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go %s: %v\n%s", strings.Join(args[:2], " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var out []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// parse parses the package's GoFiles plus extra file names from its Dir.
func (ld *loader) parse(lp *listPkg, extra []string) ([]*ast.File, error) {
	names := make([]string, 0, len(lp.GoFiles)+len(lp.CgoFiles)+len(extra))
	names = append(names, lp.GoFiles...)
	names = append(names, lp.CgoFiles...)
	names = append(names, extra...)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importDep type-checks the dependency package at path (declarations
// only) and memoizes the result.
func (ld *loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.deps[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	lp, ok := ld.universe[path]
	if !ok {
		// GOROOT-vendored dependencies (net → golang.org/x/net/...) are
		// listed under a vendor/ prefix but imported by their plain path.
		lp, ok = ld.universe["vendor/"+path]
		if !ok {
			return nil, fmt.Errorf("load: package %s not in the go list closure", path)
		}
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)
	files, err := ld.parse(lp, nil)
	if err != nil {
		return nil, err
	}
	cfg := &types.Config{
		Importer:         importerFunc(ld.importDep),
		IgnoreFuncBodies: true,
		FakeImportC:      true,
	}
	pkg, err := cfg.Check(path, ld.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	ld.deps[path] = pkg
	return pkg, nil
}

// checkTarget fully type-checks one analysis target, including the
// given extra (in-package test) files.
func (ld *loader) checkTarget(lp *listPkg, testFiles []string) (*Package, error) {
	files, err := ld.parse(lp, testFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importerFunc(ld.importDep)}
	pkg, err := cfg.Check(lp.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  ld.fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
