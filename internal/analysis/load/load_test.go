package load

import (
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// repoRoot walks up from this file to the directory containing go.mod.
func repoRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestPackagesLoadsModulePackageWithTests(t *testing.T) {
	pkgs, err := Packages(repoRoot(t), "./internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "repro/internal/wire" {
		t.Fatalf("path = %q", p.Path)
	}
	var sawTest bool
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "fuzz_test.go") {
			sawTest = true
		}
	}
	if !sawTest {
		t.Error("in-package test files not loaded")
	}
	// Type information must be populated for analyzer use.
	if p.Info == nil || len(p.Info.Uses) == 0 {
		t.Error("no type info recorded")
	}
	if obj := p.Types.Scope().Lookup("ErrMalformed"); obj == nil {
		t.Error("package scope missing ErrMalformed")
	}
}

func TestPackagesRejectsUnknownPattern(t *testing.T) {
	if _, err := Packages(repoRoot(t), "./no/such/dir"); err == nil {
		t.Fatal("want error for unknown pattern")
	}
}

func TestDirLoadsTestdataPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package fixture

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 1
}
`)
	p, err := Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.Types.Name() != "fixture" {
		t.Fatalf("package name = %q", p.Types.Name())
	}
	if len(p.Info.Selections) == 0 {
		t.Error("no selection info for method calls")
	}
	var found bool
	p.Fset.Iterate(func(f *token.File) bool {
		if strings.HasSuffix(f.Name(), "a.go") {
			found = true
		}
		return true
	})
	if !found {
		t.Error("fixture file not in fset")
	}
}
