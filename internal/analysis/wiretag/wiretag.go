// Package wiretag is an exhaustiveness checker for the wire protocol:
// every message tag constant (a package-level constant of the package's
// MsgType type) must be handled by the binary codec's Encode and Decode
// paths and the JSON codec's Decode path (JSON Encode is
// envelope-generic and needs no per-tag case), must map to a message
// struct via a Type() method, must be seeded into FuzzWireDecode, and —
// when the message carries a Legacy field, i.e. has a pre-v1 layout —
// must be covered by a legacy-decode test. PR 5 and PR 6 each added
// tags to three codec paths plus fuzz seeds by hand; this pass turns
// "did you update all five places" into a single diagnostic per
// missing pairing.
//
// Codec attribution is by receiver naming convention: encode/decode
// entry methods named Encode/Decode on a type whose name contains
// "binary" or "json" root the reachability walk, and every same-package
// function reachable from a root belongs to that codec path.
package wiretag

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wiretag pass.
var Analyzer = &analysis.Analyzer{
	Name: "wiretag",
	Doc:  "check wire tag constants are encoded, decoded, fuzz-seeded, and legacy-covered exhaustively",
	Run:  run,
}

// funcFacts records, for one function declaration, what it references
// and calls.
type funcFacts struct {
	decl     *ast.FuncDecl
	consts   map[*types.Const]bool
	typeRefs map[*types.TypeName]bool
	calls    map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "wire" {
		return nil
	}
	// The package's MsgType-like tag type: a defined type whose name is
	// "MsgType". Absent that, there is nothing to check.
	tagType, _ := pass.Pkg.Scope().Lookup("MsgType").(*types.TypeName)
	if tagType == nil {
		return nil
	}

	// Tag constants of that type, in declaration order.
	var tags []*types.Const
	for _, name := range pass.Pkg.Scope().Names() {
		c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
		if ok && analysis.TypeName(c.Type()) == analysis.TypeName(tagType.Type()) {
			tags = append(tags, c)
		}
	}
	if len(tags) == 0 {
		return nil
	}

	facts := collectFacts(pass)

	// Map each tag to the message struct whose Type() method returns it.
	structOf := map[*types.Const]*types.TypeName{}
	for _, ff := range facts {
		fn := ff.decl
		if fn.Name.Name != "Type" || fn.Recv == nil || fn.Body == nil || len(fn.Body.List) != 1 {
			continue
		}
		ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		c, ok := constOf(pass, ret.Results[0])
		if !ok {
			continue
		}
		if tn := receiverTypeName(pass, fn); tn != nil && structOf[c] == nil {
			structOf[c] = tn
		}
	}

	// Reachability per codec path.
	binEnc := reachable(pass, facts, "binary", "Encode")
	binDec := reachable(pass, facts, "binary", "Decode")
	jsonDec := reachable(pass, facts, "json", "Decode")

	refIn := func(set map[*types.Func]bool, c *types.Const) bool {
		for _, ff := range facts {
			if fn := declFunc(pass, ff.decl); fn != nil && set[fn] && ff.consts[c] {
				return true
			}
		}
		return false
	}
	typeRefInNamed := func(c *types.TypeName, match func(*ast.FuncDecl) bool) bool {
		for _, ff := range facts {
			if match(ff.decl) && ff.typeRefs[c] {
				return true
			}
		}
		return false
	}

	for _, tag := range tags {
		if pass.Suppressed(tag.Pos(), "wiretag:allow") {
			continue
		}
		var missing []string
		if !refIn(binEnc, tag) {
			missing = append(missing, "binary-codec Encode path")
		}
		if !refIn(binDec, tag) {
			missing = append(missing, "binary-codec Decode path")
		}
		if !refIn(jsonDec, tag) {
			missing = append(missing, "JSON-codec Decode path")
		}
		st := structOf[tag]
		if st == nil {
			missing = append(missing, "Type() method of a message struct")
		} else {
			if !typeRefInNamed(st, func(d *ast.FuncDecl) bool { return d.Name.Name == "FuzzWireDecode" }) {
				missing = append(missing, "FuzzWireDecode seed ("+st.Name()+")")
			}
			if hasLegacyField(st) && !typeRefInNamed(st, func(d *ast.FuncDecl) bool {
				return strings.HasPrefix(d.Name.Name, "Test") && strings.Contains(d.Name.Name, "Legacy")
			}) {
				missing = append(missing, "legacy-decode test ("+st.Name()+" has a Legacy field)")
			}
		}
		for _, m := range missing {
			pass.Reportf(tag.Pos(), "wire tag %s: not covered by the %s", tag.Name(), m)
		}
	}
	return nil
}

// collectFacts records per-function constant uses, type references, and
// same-package call edges.
func collectFacts(pass *analysis.Pass) []*funcFacts {
	var out []*funcFacts
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ff := &funcFacts{
				decl:     fn,
				consts:   map[*types.Const]bool{},
				typeRefs: map[*types.TypeName]bool{},
				calls:    map[*types.Func]bool{},
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.Ident:
					switch obj := pass.TypesInfo.Uses[v].(type) {
					case *types.Const:
						if obj.Pkg() == pass.Pkg {
							ff.consts[obj] = true
						}
					case *types.TypeName:
						if obj.Pkg() == pass.Pkg {
							ff.typeRefs[obj] = true
						}
					}
				case *ast.CallExpr:
					if callee := analysis.FuncOf(pass.TypesInfo, v); callee != nil && callee.Pkg() == pass.Pkg {
						ff.calls[callee] = true
					}
				}
				return true
			})
			out = append(out, ff)
		}
	}
	return out
}

// declFunc resolves a declaration to its types.Func.
func declFunc(pass *analysis.Pass, decl *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	return fn
}

// receiverTypeName resolves the named type of a method receiver.
func receiverTypeName(pass *analysis.Pass, fn *ast.FuncDecl) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// constOf resolves an expression to a package constant.
func constOf(pass *analysis.Pass, expr ast.Expr) (*types.Const, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		c, ok := pass.TypesInfo.Uses[e].(*types.Const)
		return c, ok
	case *ast.SelectorExpr:
		c, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const)
		return c, ok
	}
	return nil, false
}

// reachable returns the same-package functions reachable from the
// codec entry method (receiver type name containing codec,
// case-insensitive; method named entry).
func reachable(pass *analysis.Pass, facts []*funcFacts, codec, entry string) map[*types.Func]bool {
	set := map[*types.Func]bool{}
	var queue []*types.Func
	for _, ff := range facts {
		fn := ff.decl
		if fn.Name.Name != entry || fn.Recv == nil {
			continue
		}
		tn := receiverTypeName(pass, fn)
		if tn == nil || !strings.Contains(strings.ToLower(tn.Name()), codec) {
			continue
		}
		if obj := declFunc(pass, fn); obj != nil && !set[obj] {
			set[obj] = true
			queue = append(queue, obj)
		}
	}
	byObj := map[*types.Func]*funcFacts{}
	for _, ff := range facts {
		if obj := declFunc(pass, ff.decl); obj != nil {
			byObj[obj] = ff
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ff := byObj[fn]
		if ff == nil {
			continue
		}
		for callee := range ff.calls {
			if !set[callee] {
				set[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return set
}

// hasLegacyField reports whether the named struct has a field "Legacy".
func hasLegacyField(tn *types.TypeName) bool {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Legacy" {
			return true
		}
	}
	return false
}
