package wire

import "testing"

// FuzzWireDecode seeds every message except NoFuzzMsg, whose tag the
// analyzer must flag.
func FuzzWireDecode(f *testing.F) {
	var bin binaryCodec
	for _, m := range []Message{FullMsg{}, NoBinEncMsg{}, NoJSONDecMsg{}, LegacyMsg{}, LegacyOKMsg{}} {
		if b, err := bin.Encode(m); err == nil {
			f.Add(b)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var bin binaryCodec
		_, _ = bin.Decode(data)
	})
}

// TestLegacyRoundTrip covers LegacyOKMsg but not LegacyMsg, whose tag
// the analyzer must flag.
func TestLegacyRoundTrip(t *testing.T) {
	var bin binaryCodec
	b, err := bin.Encode(LegacyOKMsg{Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bin.Decode(b); err != nil {
		t.Fatal(err)
	}
}
