// Package wire is the wiretag golden fixture: a miniature wire package
// whose tag constants are each missing exactly one of the five coverage
// obligations (binary encode, binary decode, JSON decode, Type() struct
// mapping, fuzz seed / legacy test).
package wire

import "fmt"

// MsgType is the tag type the analyzer keys on.
type MsgType uint8

const (
	TagFull      MsgType = iota + 1
	TagNoBinEnc          // want `wire tag TagNoBinEnc: not covered by the binary-codec Encode path`
	TagNoJSONDec         // want `wire tag TagNoJSONDec: not covered by the JSON-codec Decode path`
	TagNoStruct          // want `wire tag TagNoStruct: not covered by the Type\(\) method of a message struct`
	TagNoFuzz            // want `wire tag TagNoFuzz: not covered by the FuzzWireDecode seed \(NoFuzzMsg\)`
	TagLegacy            // want `wire tag TagLegacy: not covered by the legacy-decode test \(LegacyMsg has a Legacy field\)`
	TagLegacyOK
	//wiretag:allow reserved for the v2 handshake; no codec support yet
	TagAllowed
)

// Message is the envelope interface.
type Message interface{ Type() MsgType }

type FullMsg struct{ V uint64 }

func (FullMsg) Type() MsgType { return TagFull }

type NoBinEncMsg struct{}

func (NoBinEncMsg) Type() MsgType { return TagNoBinEnc }

type NoJSONDecMsg struct{}

func (NoJSONDecMsg) Type() MsgType { return TagNoJSONDec }

type NoFuzzMsg struct{}

func (NoFuzzMsg) Type() MsgType { return TagNoFuzz }

type LegacyMsg struct{ Legacy bool }

func (LegacyMsg) Type() MsgType { return TagLegacy }

type LegacyOKMsg struct{ Legacy bool }

func (LegacyOKMsg) Type() MsgType { return TagLegacyOK }

// binaryCodec roots the binary encode/decode reachability walks.
type binaryCodec struct{}

func (binaryCodec) Encode(m Message) ([]byte, error) { return appendMessage(nil, m) }

// appendMessage deliberately omits TagNoBinEnc.
func appendMessage(buf []byte, m Message) ([]byte, error) {
	switch t := m.Type(); t {
	case TagFull, TagNoJSONDec, TagNoStruct, TagNoFuzz, TagLegacy, TagLegacyOK:
		return append(buf, byte(t)), nil
	}
	return nil, fmt.Errorf("unknown tag %d", m.Type())
}

func (binaryCodec) Decode(b []byte) (Message, error) { return decodeFrame(b) }

func decodeFrame(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("short frame")
	}
	switch MsgType(b[0]) {
	case TagFull:
		return FullMsg{}, nil
	case TagNoBinEnc:
		return NoBinEncMsg{}, nil
	case TagNoJSONDec:
		return NoJSONDecMsg{}, nil
	case TagNoStruct:
		return nil, fmt.Errorf("tag reserved")
	case TagNoFuzz:
		return NoFuzzMsg{}, nil
	case TagLegacy:
		return LegacyMsg{}, nil
	case TagLegacyOK:
		return LegacyOKMsg{}, nil
	}
	return nil, fmt.Errorf("unknown tag %d", b[0])
}

// jsonCodec roots the JSON decode reachability walk.
type jsonCodec struct{}

func (jsonCodec) Decode(b []byte) (Message, error) { return decodeEnvelope(b) }

// decodeEnvelope deliberately omits TagNoJSONDec; it must not call
// decodeFrame, or the reachability walk would credit the JSON path with
// every tag the binary path handles.
func decodeEnvelope(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("short envelope")
	}
	switch MsgType(b[0]) {
	case TagFull:
		return FullMsg{}, nil
	case TagNoBinEnc:
		return NoBinEncMsg{}, nil
	case TagNoStruct:
		return nil, fmt.Errorf("tag reserved")
	case TagNoFuzz:
		return NoFuzzMsg{}, nil
	case TagLegacy:
		return LegacyMsg{}, nil
	case TagLegacyOK:
		return LegacyOKMsg{}, nil
	}
	return nil, fmt.Errorf("unknown tag %d", b[0])
}

// encodeOrphan references TagNoBinEnc but is reachable from no codec
// entry method, so it must not count as binary-encode coverage.
func encodeOrphan(buf []byte) []byte {
	return append(buf, byte(TagNoBinEnc))
}
