package wiretag_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/wiretag"
)

func TestWiretagGolden(t *testing.T) {
	diags := analyzertest.Run(t, wiretag.Analyzer, "testdata/src/wirefix")
	// One diagnostic per missing pairing, no more: the fixture plants
	// exactly five gaps.
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5", len(diags))
	}
}
