// Package errcmp enforces the project's error-taxonomy discipline:
// sentinel errors (package-level variables of type error, such as
// query.ErrNoCover, wire.ErrMalformed, or io.EOF) must be matched with
// errors.Is, never with == or != — the facade and the cluster router
// both wrap sentinels with fmt.Errorf("...: %w", ...), so an identity
// comparison silently stops matching the moment a wrapping layer is
// added. For the same reason, passing a sentinel to fmt.Errorf through
// a non-%w verb strips it from the Is chain and is flagged too.
//
// Audited exceptions carry "//errcmp:allow <reason>".
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "flag ==/!= comparisons of sentinel errors and fmt.Errorf sentinel wrapping without %w",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, v)
			case *ast.CallExpr:
				checkErrorf(pass, v)
			}
			return true
		})
	}
	return nil
}

// sentinelOf returns the object and name of a package-level error
// variable used by expr, or nil.
func sentinelOf(pass *analysis.Pass, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package-level (declared in package scope) and of type error.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	named, ok := v.Type().(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return nil
	}
	return v
}

func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	sentinel := sentinelOf(pass, cmp.X)
	if sentinel == nil {
		sentinel = sentinelOf(pass, cmp.Y)
	}
	if sentinel == nil {
		return
	}
	if pass.Suppressed(cmp.OpPos, "errcmp:allow") {
		return
	}
	pass.Reportf(cmp.OpPos,
		"sentinel error %s compared with %s; use errors.Is so wrapped errors still match (or annotate //errcmp:allow <reason>)",
		sentinel.Name(), cmp.Op)
}

// checkErrorf flags fmt.Errorf calls where a sentinel-error argument is
// formatted with a verb other than %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.CalleePath(pass.TypesInfo, call) != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		sentinel := sentinelOf(pass, arg)
		if sentinel == nil || i >= len(verbs) || verbs[i] == 'w' {
			continue
		}
		if pass.Suppressed(arg.Pos(), "errcmp:allow") {
			continue
		}
		pass.Reportf(arg.Pos(),
			"sentinel error %s passed to fmt.Errorf as %%%c; use %%w so errors.Is still matches the wrapped error",
			sentinel.Name(), verbs[i])
	}
}

// formatVerbs returns the verb letter consuming each successive
// argument of a printf-style format. Indexed arguments ([n]) and
// star width/precision are rare in this repository and skipped
// conservatively (the call is then not checked).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '*', '[':
			return nil // star/indexed args shift positions; bail out
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
