// Package errfix is the errcmp golden fixture.
package errfix

import (
	"errors"
	"fmt"
	"io"
)

// ErrNoCover and ErrStopped are package-level sentinels.
var (
	ErrNoCover = errors.New("no cover")
	ErrStopped = errors.New("stopped")
)

// notAnError is package-level but not an error: never flagged.
var notAnError = 42

func compare(err error) bool {
	if err == ErrNoCover { // want `sentinel error ErrNoCover compared with ==`
		return true
	}
	if err != ErrStopped { // want `sentinel error ErrStopped compared with !=`
		return false
	}
	if err == io.EOF { // want `sentinel error EOF compared with ==`
		return true
	}
	return errors.Is(err, ErrNoCover) // the idiomatic form: fine
}

func compareAllowed(err error) bool {
	//errcmp:allow err comes straight from the decoder, never wrapped
	return err == io.EOF
}

func bareDirective(err error) bool {
	//errcmp:allow
	return err == ErrStopped // want `sentinel error ErrStopped compared with ==`
}

func localErrIsNotASentinel() bool {
	local := errors.New("local")
	probe := func() error { return local }
	return probe() == local // locals are identity-safe: fine
}

func nonErrorComparison(n int) bool {
	return n == notAnError // not an error value: fine
}

func wrap(key string) error {
	return fmt.Errorf("lookup %q: %w", key, ErrNoCover) // %w keeps Is working: fine
}

func wrapBadly(key string) error {
	return fmt.Errorf("lookup %q: %v", key, ErrNoCover) // want `sentinel error ErrNoCover passed to fmt\.Errorf as %v`
}

func wrapString(key string) error {
	return fmt.Errorf("lookup %s failed: %s", key, ErrStopped) // want `sentinel error ErrStopped passed to fmt\.Errorf as %s`
}

func wrapAllowed(key string) error {
	return fmt.Errorf("log-only context: %v",
		//errcmp:allow message is for logs; callers never Is-match it
		ErrStopped)
}
