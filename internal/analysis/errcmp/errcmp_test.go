package errcmp_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/errcmp"
)

func TestErrcmpGolden(t *testing.T) {
	analyzertest.Run(t, errcmp.Analyzer, "testdata/src/errfix")
}
