package colfmt_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/colfmt"
)

func TestColfmtGolden(t *testing.T) {
	diags := analyzertest.Run(t, colfmt.Analyzer, "testdata/src/colfix")
	// One diagnostic per half-wired constant, no more: the fixture
	// plants exactly two gaps and suppresses a third.
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
}
