// Package colfmt is an exhaustiveness checker for the columnar block
// format: every format constant of the colblock package (a package-level
// constant whose name ends in "Magic" or "Version") must be referenced
// on both sides of the codec — written by a function reachable from
// Encode, and validated by a function reachable from a decode entry
// (OpenFile, OpenBytes, or Verify). The package must also pair the two
// sides in a native fuzzer: a FuzzColBlockDecode function that builds
// its seed corpus with Encode and drives the decoder through Verify or
// OpenBytes, so any constant or layout change that breaks the
// round-trip fails CI rather than surfacing as a corrupt sidecar in
// production. A half-wired constant — stamped by the encoder but never
// checked by the reader, or vice versa — is exactly how silent format
// drift starts; this pass turns it into one diagnostic per gap.
package colfmt

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the colfmt pass.
var Analyzer = &analysis.Analyzer{
	Name: "colfmt",
	Doc:  "check colblock format constants are encoded, decoded, and fuzz-paired exhaustively",
	Run:  run,
}

// funcFacts records, for one function declaration, the package
// constants it references and the same-package functions it calls.
type funcFacts struct {
	decl   *ast.FuncDecl
	consts map[*types.Const]bool
	calls  map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "colblock" {
		return nil
	}

	// Format constants: package-level, named *Magic or *Version.
	var formats []*types.Const
	for _, name := range pass.Pkg.Scope().Names() {
		c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if strings.HasSuffix(name, "Magic") || strings.HasSuffix(name, "Version") {
			formats = append(formats, c)
		}
	}
	if len(formats) == 0 {
		return nil
	}

	facts := collectFacts(pass)
	encSide := reachableFrom(pass, facts, "Encode")
	decSide := reachableFrom(pass, facts, "OpenFile", "OpenBytes", "Verify")

	refIn := func(set map[*types.Func]bool, c *types.Const) bool {
		for _, ff := range facts {
			if fn := declFunc(pass, ff.decl); fn != nil && set[fn] && ff.consts[c] {
				return true
			}
		}
		return false
	}

	for _, c := range formats {
		if pass.Suppressed(c.Pos(), "colfmt:allow") {
			continue
		}
		if !refIn(encSide, c) {
			pass.Reportf(c.Pos(), "colblock format constant %s: not written on the Encode path", c.Name())
		}
		if !refIn(decSide, c) {
			pass.Reportf(c.Pos(), "colblock format constant %s: not validated on the decode path (OpenFile/OpenBytes/Verify)", c.Name())
		}
	}

	// The fuzz pairing: FuzzColBlockDecode must exist, seed through
	// Encode, and drive the decoder.
	var fuzz *funcFacts
	for _, ff := range facts {
		if ff.decl.Name.Name == "FuzzColBlockDecode" && ff.decl.Recv == nil {
			fuzz = ff
			break
		}
	}
	anchor := formats[0].Pos()
	if pass.Suppressed(anchor, "colfmt:allow") {
		return nil
	}
	if fuzz == nil {
		pass.Reportf(anchor, "colblock format: no FuzzColBlockDecode fuzzer pairs the encode and decode paths")
		return nil
	}
	callsNamed := func(name string) bool {
		for fn := range fuzz.calls {
			if fn.Name() == name {
				return true
			}
		}
		return false
	}
	if !callsNamed("Encode") {
		pass.Reportf(fuzz.decl.Pos(), "FuzzColBlockDecode: seed corpus is not built with Encode, so seeds drift from the writer")
	}
	if !callsNamed("Verify") && !callsNamed("OpenBytes") {
		pass.Reportf(fuzz.decl.Pos(), "FuzzColBlockDecode: never drives the decoder (call Verify or OpenBytes)")
	}
	return nil
}

// collectFacts records per-function constant uses and same-package call
// edges, including functions called indirectly through closures the
// function body creates.
func collectFacts(pass *analysis.Pass) []*funcFacts {
	var out []*funcFacts
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ff := &funcFacts{
				decl:   fn,
				consts: map[*types.Const]bool{},
				calls:  map[*types.Func]bool{},
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.Ident:
					if obj, ok := pass.TypesInfo.Uses[v].(*types.Const); ok && obj.Pkg() == pass.Pkg {
						ff.consts[obj] = true
					}
				case *ast.CallExpr:
					if callee := analysis.FuncOf(pass.TypesInfo, v); callee != nil && callee.Pkg() == pass.Pkg {
						ff.calls[callee] = true
					}
				}
				return true
			})
			out = append(out, ff)
		}
	}
	return out
}

// declFunc resolves a declaration to its types.Func.
func declFunc(pass *analysis.Pass, decl *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	return fn
}

// reachableFrom returns the same-package functions reachable from any
// package-level function with one of the given names.
func reachableFrom(pass *analysis.Pass, facts []*funcFacts, roots ...string) map[*types.Func]bool {
	rootSet := map[string]bool{}
	for _, r := range roots {
		rootSet[r] = true
	}
	set := map[*types.Func]bool{}
	var queue []*types.Func
	byObj := map[*types.Func]*funcFacts{}
	for _, ff := range facts {
		obj := declFunc(pass, ff.decl)
		if obj == nil {
			continue
		}
		byObj[obj] = ff
		if ff.decl.Recv == nil && rootSet[ff.decl.Name.Name] {
			set[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ff := byObj[fn]
		if ff == nil {
			continue
		}
		for callee := range ff.calls {
			if !set[callee] {
				set[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return set
}
