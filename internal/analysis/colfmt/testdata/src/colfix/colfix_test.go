package colblock

import "testing"

// FuzzColBlockDecode satisfies the pairing obligation: seeds built with
// Encode, decoder driven through Verify.
func FuzzColBlockDecode(f *testing.F) {
	f.Add(Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = Verify(data)
	})
}
