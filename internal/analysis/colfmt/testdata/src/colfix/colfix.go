// Package colblock is the colfmt golden fixture: a miniature columnar
// codec whose format constants are each missing exactly one side of the
// encode/decode pairing, plus one fully wired and one suppressed.
package colblock

import "errors"

const (
	okMagic        = 0x11
	okVersion      = 1
	encOnlyMagic   = 0x22 // want `colblock format constant encOnlyMagic: not validated on the decode path`
	decOnlyVersion = 2    // want `colblock format constant decOnlyVersion: not written on the Encode path`
	//colfmt:allow reserved for the v2 layout; nothing emits it yet
	reservedMagic = 0x33
)

var errBad = errors.New("colblock: bad header")

// Encode stamps the three-byte header; encOnlyMagic is written here but
// never checked by the reader, which the analyzer must flag.
func Encode(buf []byte) []byte {
	return append(buf, byte(okMagic), byte(okVersion), byte(encOnlyMagic))
}

// OpenBytes is a decode entry.
func OpenBytes(data []byte) error { return verifyHeader(data) }

// Verify is the other decode entry, reaching the same validation.
func Verify(data []byte) error { return OpenBytes(data) }

// verifyHeader checks decOnlyVersion, which no encoder ever writes —
// the other half-wired constant the analyzer must flag.
func verifyHeader(data []byte) error {
	if len(data) < 3 || data[0] != okMagic || data[1] != okVersion || data[2] == byte(decOnlyVersion) {
		return errBad
	}
	return nil
}
