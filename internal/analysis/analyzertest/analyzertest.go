// Package analyzertest runs an analyzer over a fixture package and
// checks its diagnostics against golden "// want" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest. A fixture line that must
// produce diagnostics carries a comment of the form
//
//	ch <- v // want `send on ch while .* is held`
//
// where each backquoted (or double-quoted) string is a regular
// expression that must match the message of exactly one diagnostic
// reported on that line. Diagnostics without a matching want, and wants
// without a matching diagnostic, fail the test.
package analyzertest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRe extracts the expectation strings of one want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads the fixture package in dir, applies a, and compares
// diagnostics against the fixture's want comments. It returns the
// diagnostics so callers can make additional assertions.
func Run(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Analyzers gate on path shape ("internal/..."), so hand them the
	// absolute fixture path.
	pkg, err := load.Dir(abs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Path:      pkg.Path,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, expr, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", shortPos(pos), d.Message)
		}
	}
	var leftovers []string
	for k, res := range wants {
		for _, re := range res {
			leftovers = append(leftovers,
				fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(leftovers)
	for _, l := range leftovers {
		t.Error(l)
	}
	return diags
}

func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}
