// Package lockcheck flags operations that must not happen while a
// sync.Mutex or sync.RWMutex is held: channel sends, blocking
// network/file I/O, time.Sleep, and calls of function-typed values
// (user callbacks, dialers — code the lock holder does not control).
// Each is a latent deadlock or a tail-latency cliff: the lock serializes
// every other path through the structure behind an operation of
// unbounded duration. This is the bug class fixed twice in PR 5's
// review rounds (lazyTransport dialing under its mutex).
//
// Sends that are provably non-blocking — a send case of a select that
// has a default clause — are not flagged. Audited exceptions (for
// example internal/subs/feed.go's drop-oldest send, where the freed
// slot makes the send non-blocking) carry a
//
//	//lockcheck:allow <why this cannot block>
//
// directive on the same line or the line above.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "flag channel sends, I/O, and callback invocations under a held sync mutex",
	Run:  run,
}

// blockingCalls are stdlib entry points that block on the network, the
// disk, or the clock. Method entries use the receiver's named type.
var blockingCalls = map[string]bool{
	"net.Dial":               true,
	"net.DialTimeout":        true,
	"net.Listen":             true,
	"crypto/tls.Dial":        true,
	"net.Dialer.Dial":        true,
	"net.Dialer.DialContext": true,
	"net/http.Get":           true,
	"net/http.Post":          true,
	"net/http.Head":          true,
	"net/http.Client.Do":     true,
	"net.Conn.Read":          true,
	"net.Conn.Write":         true,
	"net.TCPConn.Read":       true,
	"net.TCPConn.Write":      true,
	"net.Listener.Accept":    true,
	"os.Open":                true,
	"os.Create":              true,
	"os.OpenFile":            true,
	"os.ReadFile":            true,
	"os.WriteFile":           true,
	"os.Rename":              true,
	"os.Remove":              true,
	"os.RemoveAll":           true,
	"os.File.Read":           true,
	"os.File.Write":          true,
	"os.File.WriteString":    true,
	"os.File.Sync":           true,
	"io.Copy":                true,
	"io.ReadAll":             true,
	"time.Sleep":             true,
	"sync.WaitGroup.Wait":    true,
}

// heldLock is one mutex known to be held at the current scan point.
type heldLock struct {
	key    string // rendered receiver expression, e.g. "f.mu"
	unlock string // matching unlock method name
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Every function body — declarations and literals — is an
			// independent critical-section scope.
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanStmts(pass, fn.Body.List, callerHeld(fn))
				}
			case *ast.FuncLit:
				scanStmts(pass, fn.Body.List, nil)
			}
			return true
		})
	}
	return nil
}

// callerHeld returns the lock set a function starts with. The project's
// naming contract is that a method named fooLocked runs with its
// receiver's mutex already held by the caller, so its body is scanned
// as one big critical section.
func callerHeld(fn *ast.FuncDecl) []heldLock {
	if fn.Recv == nil || !strings.HasSuffix(fn.Name.Name, "Locked") {
		return nil
	}
	return []heldLock{{key: "the caller's mutex (" + fn.Name.Name + " follows the *Locked contract)"}}
}

// mutexCall reports whether stmt is a lock or unlock call on a sync
// mutex, returning the rendered receiver and the method name.
func mutexCall(pass *analysis.Pass, stmt ast.Stmt) (key, method string, ok bool) {
	es, ok2 := stmt.(*ast.ExprStmt)
	if !ok2 {
		return "", "", false
	}
	call, ok2 := es.X.(*ast.CallExpr)
	if !ok2 {
		return "", "", false
	}
	sel, ok2 := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	path := analysis.CalleePath(pass.TypesInfo, call)
	switch path {
	case "sync.Mutex.Lock", "sync.Mutex.Unlock",
		"sync.RWMutex.Lock", "sync.RWMutex.Unlock",
		"sync.RWMutex.RLock", "sync.RWMutex.RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// scanStmts walks one statement list tracking the set of held locks.
// Compound statements recurse with a copy of the set, so an early-exit
// branch that unlocks does not clear the lock for the fallthrough path.
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held []heldLock) {
	held = append([]heldLock(nil), held...)
	for _, stmt := range stmts {
		for {
			ls, ok := stmt.(*ast.LabeledStmt)
			if !ok {
				break
			}
			stmt = ls.Stmt
		}
		if key, method, ok := mutexCall(pass, stmt); ok {
			switch method {
			case "Lock", "RLock":
				unlock := "Unlock"
				if method == "RLock" {
					unlock = "RUnlock"
				}
				held = append(held, heldLock{key: key, unlock: unlock})
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == key && held[i].unlock == method {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			continue
		}
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			// Deferred work runs after the function's own unlocks (or is
			// the unlock itself); either way it is not "under" the lock
			// for this forward scan.
		case *ast.GoStmt:
			// A goroutine does not inherit the caller's critical section,
			// but its argument expressions are evaluated here.
			for _, arg := range s.Call.Args {
				checkExpr(pass, arg, held)
			}
		case *ast.BlockStmt:
			scanStmts(pass, s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				checkStmtExprs(pass, s.Init, held)
			}
			checkExpr(pass, s.Cond, held)
			scanStmts(pass, s.Body.List, held)
			if s.Else != nil {
				scanStmts(pass, []ast.Stmt{s.Else}, held)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				checkStmtExprs(pass, s.Init, held)
			}
			if s.Cond != nil {
				checkExpr(pass, s.Cond, held)
			}
			scanStmts(pass, s.Body.List, held)
		case *ast.RangeStmt:
			checkExpr(pass, s.X, held)
			scanStmts(pass, s.Body.List, held)
		case *ast.SwitchStmt:
			if s.Init != nil {
				checkStmtExprs(pass, s.Init, held)
			}
			if s.Tag != nil {
				checkExpr(pass, s.Tag, held)
			}
			for _, c := range s.Body.List {
				scanStmts(pass, c.(*ast.CaseClause).Body, held)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				scanStmts(pass, c.(*ast.CaseClause).Body, held)
			}
		case *ast.SelectStmt:
			scanSelect(pass, s, held)
		default:
			checkStmtExprs(pass, stmt, held)
		}
	}
}

// scanSelect handles a select statement: a send case is non-blocking
// when the select has a default clause, so only defaultless selects
// have their send cases flagged. Case bodies run after the
// communication and are scanned normally.
func scanSelect(pass *analysis.Pass, s *ast.SelectStmt, held []heldLock) {
	hasDefault := false
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			if hasDefault {
				checkExpr(pass, send.Value, held) // value expr still evaluated
			} else {
				checkStmtExprs(pass, send, held)
			}
		}
		scanStmts(pass, cc.Body, held)
	}
}

// checkStmtExprs reports violations inside one simple statement.
func checkStmtExprs(pass *analysis.Pass, stmt ast.Stmt, held []heldLock) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // a closure body runs when called, not here
		case *ast.SendStmt:
			report(pass, v.Arrow, held, "channel send")
			return true
		case *ast.CallExpr:
			checkCall(pass, v, held)
			return true
		}
		return true
	})
}

// checkExpr reports violations inside one expression.
func checkExpr(pass *analysis.Pass, expr ast.Expr, held []heldLock) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			checkCall(pass, v, held)
		}
		return true
	})
}

// checkCall classifies one call made under a held lock.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, held []heldLock) {
	if path := analysis.CalleePath(pass.TypesInfo, call); path != "" {
		if blockingCalls[path] {
			report(pass, call.Pos(), held, "call to "+path)
		}
		return
	}
	// Dynamic call: the callee is a function-typed value (a callback,
	// a dialer field, a handler) rather than a statically known
	// function. The lock holder cannot bound what it does.
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	default:
		return
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return // conversion, builtin, static func, or type error
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return
	}
	report(pass, call.Pos(), held, "call of function value "+types.ExprString(fun))
}

func report(pass *analysis.Pass, pos token.Pos, held []heldLock, what string) {
	if pass.Suppressed(pos, "lockcheck:allow") {
		return
	}
	pass.Reportf(pos, "%s while %s is held; move it outside the critical section or annotate //lockcheck:allow <reason>",
		what, held[len(held)-1].key)
}
