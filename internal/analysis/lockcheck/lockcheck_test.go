package lockcheck_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockcheck"
)

func TestLockcheckGolden(t *testing.T) {
	diags := analyzertest.Run(t, lockcheck.Analyzer, "testdata/src/lockfix")
	// The fixture seeds PR 5's lazyTransport dial-under-mutex regression;
	// make the guarantee explicit beyond the want comments.
	var sawDial bool
	for _, d := range diags {
		if strings.Contains(d.Message, "lt.dial") {
			sawDial = true
		}
	}
	if !sawDial {
		t.Error("dial-under-mutex regression shape not detected")
	}
}
