// Package lockfix is the lockcheck golden fixture: every "want"
// comment is a diagnostic the analyzer must produce, and every
// undecorated shape must stay silent.
package lockfix

import (
	"net"
	"os"
	"sync"
	"time"
)

// Transport mirrors the cluster transport interface.
type Transport interface {
	Exchange(string) (string, error)
}

// lazyTransport reproduces PR 5's dial-under-mutex bug shape: the dial
// callback runs while the mutex is held, serializing every concurrent
// caller behind one dial timeout.
type lazyTransport struct {
	addr string
	dial func(addr string) (Transport, error)

	mu sync.Mutex
	t  Transport
}

func (lt *lazyTransport) exchangeBuggy(req string) (string, error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.t == nil {
		nt, err := lt.dial(lt.addr) // want `call of function value lt\.dial while lt\.mu is held`
		if err != nil {
			return "", err
		}
		lt.t = nt
	}
	return lt.t.Exchange(req)
}

func (lt *lazyTransport) exchangeFixed(req string) (string, error) {
	lt.mu.Lock()
	t := lt.t
	lt.mu.Unlock()
	if t == nil {
		nt, err := lt.dial(lt.addr) // lock released: fine
		if err != nil {
			return "", err
		}
		lt.mu.Lock()
		lt.t = nt
		lt.mu.Unlock()
		t = nt
	}
	return t.Exchange(req)
}

type queue struct {
	mu sync.Mutex
	ch chan int
	fn func()
}

func (q *queue) sendUnderLock(v int) {
	q.mu.Lock()
	q.ch <- v // want `channel send while q\.mu is held`
	q.mu.Unlock()
}

func (q *queue) sendUnderDeferredUnlock(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want `channel send while q\.mu is held`
}

func (q *queue) sendAfterUnlock(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

func (q *queue) nonBlockingSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v: // non-blocking: select has a default
	default:
	}
}

func (q *queue) blockingSelectSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v: // want `channel send while q\.mu is held`
	case <-time.After(time.Second):
	}
}

func (q *queue) allowedSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lockcheck:allow audited: the queue slot was freed above, send cannot block
	q.ch <- v
}

func (q *queue) bareDirectiveDoesNotSuppress(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lockcheck:allow
	q.ch <- v // want `channel send while q\.mu is held`
}

func (q *queue) callbackUnderLock() {
	q.mu.Lock()
	q.fn() // want `call of function value q\.fn while q\.mu is held`
	q.mu.Unlock()
	q.fn() // released: fine
}

func (q *queue) goroutineEscapesLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- 1 // runs outside the critical section
	}()
}

// offerLocked mirrors subs.Feed.offerLocked: the *Locked suffix means
// the caller holds the mutex, so the send is flagged even though no
// Lock call appears in this body.
func (q *queue) offerLocked(v int) {
	select {
	case q.ch <- v:
		return
	default:
	}
	q.ch <- v // want `channel send while the caller's mutex \(offerLocked follows the \*Locked contract\) is held`
}

// drainLocked only attempts non-blocking work; stays silent.
func (q *queue) drainLocked() {
	select {
	case <-q.ch:
	default:
	}
}

type server struct {
	mu   sync.RWMutex
	path string
}

func (s *server) ioUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.Open(s.path) // want `call to os\.Open while s\.mu is held`
	if err != nil {
		return err
	}
	return f.Close()
}

func (s *server) dialUnderRLock() (net.Conn, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return net.Dial("tcp", s.path) // want `call to net\.Dial while s\.mu is held`
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) rlockReleasedBeforeDial() (net.Conn, error) {
	s.mu.RLock()
	path := s.path
	s.mu.RUnlock()
	return net.Dial("tcp", path)
}

func (s *server) branchUnlockKeepsOuterHeld(ready bool) {
	s.mu.Lock()
	if ready {
		s.mu.Unlock()
		return
	}
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while s\.mu is held`
	s.mu.Unlock()
}

func staticCallsAreFine(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	helper()
}

func helper() {}
