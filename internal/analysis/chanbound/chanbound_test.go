package chanbound_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/chanbound"
)

func TestChanboundGolden(t *testing.T) {
	diags := analyzertest.Run(t, chanbound.Analyzer, "testdata/src/chanfix")
	// The fixture seeds PR 6's slow-consumer shape (unbuffered
	// per-subscriber channel); make the guarantee explicit.
	var sawUnbuffered bool
	for _, d := range diags {
		if strings.Contains(d.Message, "unbuffered channel") {
			sawUnbuffered = true
		}
	}
	if !sawUnbuffered {
		t.Error("slow-consumer unbuffered-channel regression shape not detected")
	}
}
