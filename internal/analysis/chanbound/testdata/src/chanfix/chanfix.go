// Package chanfix is the chanbound golden fixture.
package chanfix

// defaultDepth is a reviewable, named bound.
const defaultDepth = 64

// Config carries a tunable queue depth.
type Config struct {
	QueueDepth int
}

// Event mirrors the subscription event payload.
type Event struct{ Seq uint64 }

// Feed reproduces PR 6's slow-consumer regression shape: handing every
// subscriber an unbuffered channel lets one stalled consumer wedge the
// broadcaster.
type Feed struct {
	subs []chan Event
}

// Subscribe with an unbuffered per-subscriber channel: flagged.
func (f *Feed) Subscribe() <-chan Event {
	ch := make(chan Event) // want `unbuffered channel in library code`
	f.subs = append(f.subs, ch)
	return ch
}

// SubscribeBounded names the bound: fine.
func (f *Feed) SubscribeBounded(cfg Config) <-chan Event {
	ch := make(chan Event, cfg.QueueDepth)
	f.subs = append(f.subs, ch)
	return ch
}

func shapes(cfg Config) {
	_ = make(chan int)     // want `unbuffered channel in library code`
	_ = make(chan int, 16) // want `channel capacity is a magic number`
	_ = make(chan int, defaultDepth)
	_ = make(chan int, cfg.QueueDepth)
	_ = make(chan int, 2*defaultDepth) // arithmetic over a named bound: fine

	//bounded: rendezvous with exactly one worker; both sides are select-guarded
	done := make(chan struct{})
	_ = done

	errs := make(chan error, 1) //bounded: one writer, capacity matches the single result
	_ = errs

	//bounded:
	bare := make(chan int) // want `unbuffered channel in library code`
	_ = bare

	_ = make([]int, 8)    // make of a non-channel: fine
	_ = make(map[int]int) // ditto
}
