// Package chanbound enforces queue-boundedness discipline: every
// make(chan T) in non-test library code must either be buffered with a
// capacity that is named — a constant or a config/parameter expression,
// so the bound is reviewable and tunable — or carry a
//
//	//bounded: <why this channel cannot grow or block unboundedly>
//
// justification on the same line or the line above. Unbuffered channels
// and magic-number capacities are how slow consumers stalled producers
// before PR 6's Feed introduced the drop-oldest queue; the directive
// forces every remaining rendezvous or fixed-size channel to say what
// bounds it.
package chanbound

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the chanbound pass.
var Analyzer = &analysis.Analyzer{
	Name: "chanbound",
	Doc:  "require named capacities or //bounded: justifications on library channels",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fun.Name != "make" {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "make" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if _, ok := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
				return true
			}
			if pass.Suppressed(call.Pos(), "bounded:") {
				return true
			}
			if len(call.Args) < 2 {
				pass.Reportf(call.Pos(),
					"unbuffered channel in library code; give it a named capacity or justify the rendezvous with //bounded: <reason>")
				return true
			}
			if !namedCapacity(pass, call.Args[1]) {
				pass.Reportf(call.Args[1].Pos(),
					"channel capacity is a magic number; name it (constant or config field) or justify it with //bounded: <reason>")
			}
			return true
		})
	}
	return nil
}

// namedCapacity reports whether the capacity expression is named — an
// identifier or selector (constant, variable, field, parameter) or an
// arithmetic expression over named values. A bare literal is not.
func namedCapacity(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return false
	case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
		return true
	case *ast.BinaryExpr:
		return namedCapacity(pass, e.X) || namedCapacity(pass, e.Y)
	case *ast.UnaryExpr:
		return namedCapacity(pass, e.X)
	}
	return false
}
