// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis contract: an Analyzer inspects one
// type-checked package at a time and reports position-anchored
// diagnostics. The build environment for this repository is offline and
// vendors nothing, so the project's invariant checkers (lockcheck,
// ctxcheck, wiretag, errcmp, chanbound — see docs/DEVELOPMENT.md) run
// on this framework instead; the API shape is kept deliberately close
// to x/tools so the analyzers port mechanically if the dependency ever
// lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("lockcheck").
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (or directory for testdata
	// packages loaded outside the module).
	Path string
	Fset *token.FileSet
	// Files is the package syntax, including in-package _test.go files.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic. The driver deduplicates and sorts.
	Report func(Diagnostic)

	directives map[string][]directive // file name -> line directives, lazily built
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name; filled by the driver if empty
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directive is one "//prefix reason" comment.
type directive struct {
	line int
	text string // comment text after "//", e.g. "lockcheck:allow audited in review"
}

// Suppressed reports whether a directive comment beginning with prefix
// (for example "lockcheck:allow" or "bounded:") appears on the same
// line as pos or on the line immediately above it. The directive must
// carry a non-empty justification after the prefix — a bare
// "//lockcheck:allow" does not suppress, so every audited exception is
// forced to say why. Directives are written without a space after "//".
func (p *Pass) Suppressed(pos token.Pos, prefix string) bool {
	position := p.Fset.Position(pos)
	if p.directives == nil {
		p.directives = map[string][]directive{}
		for _, f := range p.Files {
			fname := p.Fset.Position(f.Pos()).Filename
			p.directives[fname] = fileDirectives(p.Fset, f)
		}
	}
	for _, d := range p.directives[position.Filename] {
		if d.line != position.Line && d.line != position.Line-1 {
			continue
		}
		reason, ok := strings.CutPrefix(d.text, prefix)
		if ok && strings.TrimSpace(reason) != "" {
			return true
		}
	}
	return false
}

// fileDirectives extracts "//word:..." line comments from f. Ordinary
// prose comments never qualify because directives hug the slashes (no
// space after "//") and their first word ends in a colon.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comment
			}
			if strings.HasPrefix(text, " ") || strings.HasPrefix(text, "\t") {
				continue
			}
			word, _, ok := strings.Cut(text, " ")
			if !ok {
				word = text
			}
			if !strings.Contains(word, ":") {
				continue
			}
			out = append(out, directive{
				line: fset.Position(c.Pos()).Line,
				text: text,
			})
		}
	}
	return out
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several analyzers relax their rules for test code.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeName returns the named-type path "pkgpath.Name" for t after
// unwrapping pointers and aliases, or "" when t has no name.
func TypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// FuncOf resolves the called function object of a call expression, or
// nil for dynamic calls, conversions, and builtins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleePath returns "pkgpath.FuncName" for static calls to top-level
// functions ("net.Dial") or "pkgpath.Recv.Method" for method calls
// ("os.File.Write", receiver pointer stripped), or "".
func CalleePath(info *types.Info, call *ast.CallExpr) string {
	fn := FuncOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		rt := TypeName(recv.Type())
		if rt == "" {
			// Interface methods on unnamed types; fall back to pkg.Method.
			return fn.Pkg().Path() + "." + fn.Name()
		}
		return rt + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
