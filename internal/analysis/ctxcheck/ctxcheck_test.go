package ctxcheck_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ctxcheck"
)

func TestCtxcheckGolden(t *testing.T) {
	analyzertest.Run(t, ctxcheck.Analyzer, "testdata/src/ctxfix")
}
