// Package ctxcheck enforces context discipline in library code:
//
//  1. context.Background() and context.TODO() must not be called in
//     internal/... non-test code. A library path that manufactures its
//     own root context swallows the caller's cancellation and deadline —
//     exactly how PR 5/6 request paths lost cancellation through the
//     cluster router. Roots belong in cmd/, tests, and main-adjacent
//     wiring (which this analyzer does not visit).
//  2. Exported functions and methods in internal/... whose bodies
//     directly block — a channel send/receive, a select without a
//     default, time.Sleep, or sync.WaitGroup.Wait — must accept a
//     context.Context so callers can bound the wait.
//
// Audited exceptions carry a "//ctxcheck:allow <reason>" directive on
// the same line (rule 1) or on the function declaration's first line
// (rule 2). Lifecycle owners — a registry spawning its own workers
// whose lifetime is bound to Close, not to any caller — are the
// expected rule-1 exceptions.
package ctxcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc:  "flag context.Background in library paths and exported blocking APIs without a context parameter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Path, "internal/") {
		// Only library code is constrained; cmd/, examples, and the root
		// facade own their roots.
		return nil
	}
	if strings.Contains(pass.Path, "internal/analysis") && !strings.Contains(pass.Path, "testdata") {
		// The analyzer suite itself is tooling, not a serving path, and
		// its sources embed fixture shapes.
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkRootContext(pass, v)
			case *ast.FuncDecl:
				checkExportedBlocking(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkRootContext flags context.Background()/context.TODO() calls.
func checkRootContext(pass *analysis.Pass, call *ast.CallExpr) {
	path := analysis.CalleePath(pass.TypesInfo, call)
	if path != "context.Background" && path != "context.TODO" {
		return
	}
	if pass.Suppressed(call.Pos(), "ctxcheck:allow") {
		return
	}
	pass.Reportf(call.Pos(),
		"%s in library code swallows the caller's cancellation; thread a ctx parameter or annotate //ctxcheck:allow <reason>",
		path[len("context."):]+"()")
}

// checkExportedBlocking flags exported functions that block without
// accepting a context.
func checkExportedBlocking(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || !fn.Name.IsExported() {
		return
	}
	if fn.Name.Name == "Close" {
		// The io.Closer contract has no room for a context; Close is
		// expected to block until teardown completes.
		return
	}
	if fn.Recv != nil {
		// Methods of unexported types are not part of the package API
		// unless they implement an exported interface; hold them to the
		// same rule only when the receiver type is exported.
		if name := receiverTypeName(fn); name != "" && !ast.IsExported(name) {
			return
		}
	}
	if hasContextParam(pass, fn) {
		return
	}
	blockPos, what := firstBlockingOp(pass, fn.Body)
	if blockPos == token.NoPos {
		return
	}
	if pass.Suppressed(fn.Pos(), "ctxcheck:allow") || pass.Suppressed(blockPos, "ctxcheck:allow") {
		return
	}
	pass.Reportf(fn.Pos(),
		"exported %s blocks (%s) but takes no context.Context; callers cannot bound the wait (annotate //ctxcheck:allow <reason> if the wait is bounded elsewhere)",
		fn.Name.Name, what)
}

func receiverTypeName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func hasContextParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		if analysis.TypeName(pass.TypesInfo.TypeOf(field.Type)) == "context.Context" {
			return true
		}
	}
	return false
}

// firstBlockingOp finds the first directly blocking operation in body,
// not descending into function literals (a closure blocks whoever runs
// it, typically a goroutine with its own lifecycle).
func firstBlockingOp(pass *analysis.Pass, body ast.Node) (pos token.Pos, what string) {
	found := func(p token.Pos, w string) {
		if pos == token.NoPos {
			pos, what = p, w
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found(v.Arrow, "channel send")
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found(v.OpPos, "channel receive")
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found(v.For, "range over channel")
					return false
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range v.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				// The communication itself is a non-blocking attempt;
				// only the clause bodies can block.
				for _, c := range v.Body.List {
					for _, s := range c.(*ast.CommClause).Body {
						if p, w := firstBlockingOp(pass, s); p != token.NoPos {
							found(p, w)
							break
						}
					}
				}
				return false
			}
			found(v.Select, "select without default")
			return false
		case *ast.CallExpr:
			switch analysis.CalleePath(pass.TypesInfo, v) {
			case "time.Sleep":
				found(v.Pos(), "time.Sleep")
			case "sync.WaitGroup.Wait":
				found(v.Pos(), "sync.WaitGroup.Wait")
			}
		}
		return true
	})
	return pos, what
}
