// Package ctxfix is the ctxcheck golden fixture. The fixture directory
// sits under internal/, so the analyzer treats it as library code.
package ctxfix

import (
	"context"
	"sync"
	"time"
)

type Engine struct {
	ch   chan int
	stop chan struct{}
	wg   sync.WaitGroup
}

func (e *Engine) handle() error {
	ctx := context.Background() // want `Background\(\) in library code swallows the caller's cancellation`
	_ = ctx
	todo := context.TODO() // want `TODO\(\) in library code swallows the caller's cancellation`
	_ = todo
	return nil
}

func (e *Engine) lifecycle() {
	// The registry owns this context; workers die on Close, not on any
	// caller's deadline.
	//ctxcheck:allow worker lifetime is bound to Close, not to a caller
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx
}

func (e *Engine) bareDirective() {
	//ctxcheck:allow
	ctx := context.Background() // want `Background\(\) in library code swallows the caller's cancellation`
	_ = ctx
}

// Wait blocks on a channel receive with no context: flagged.
func (e *Engine) Wait() int { // want `exported Wait blocks \(channel receive\) but takes no context\.Context`
	return <-e.ch
}

// WaitCtx threads a context: fine.
func (e *Engine) WaitCtx(ctx context.Context) (int, error) {
	select {
	case v := <-e.ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Close blocks but is exempt: the io.Closer contract has no context.
func (e *Engine) Close() error {
	close(e.stop)
	e.wg.Wait()
	return nil
}

// Drain blocks in a defaultless select: flagged.
func (e *Engine) Drain() { // want `exported Drain blocks \(select without default\) but takes no context\.Context`
	select {
	case <-e.ch:
	case <-e.stop:
	}
}

// Poll only attempts non-blocking communication: fine.
func (e *Engine) Poll() (int, bool) {
	select {
	case v := <-e.ch:
		return v, true
	default:
		return 0, false
	}
}

// Flush ranges over a channel: flagged.
func (e *Engine) Flush() { // want `exported Flush blocks \(range over channel\) but takes no context\.Context`
	for range e.ch {
	}
}

// Throttle sleeps: flagged.
func (e *Engine) Throttle() { // want `exported Throttle blocks \(time\.Sleep\) but takes no context\.Context`
	time.Sleep(time.Millisecond)
}

// Settle is audited: the wait is bounded by the worker queue depth.
//
//ctxcheck:allow wait bounded by queue depth; see fixture
func (e *Engine) Settle() {
	e.wg.Wait()
}

// launch blocks but is unexported: the rule covers exported API only.
func (e *Engine) launch() {
	e.ch <- 1
}

// SpawnWorker only blocks inside a goroutine closure with its own
// lifecycle: fine.
func (e *Engine) SpawnWorker() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		<-e.stop
	}()
}

// hidden is an unexported type; its exported methods are not API.
type hidden struct{ ch chan int }

func (h *hidden) Recv() int { return <-h.ch }
