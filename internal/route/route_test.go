package route

import (
	"errors"
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/geo"
)

func TestRecorderFiltering(t *testing.T) {
	r := NewRecorder(RecorderConfig{MinDistance: 10, MaxSpeed: 50})

	if !r.Add(Fix{T: 0, Pos: geo.Point{X: 0, Y: 0}}) {
		t.Error("first fix must be kept")
	}
	// Too close: jitter while standing.
	if r.Add(Fix{T: 10, Pos: geo.Point{X: 3, Y: 0}}) {
		t.Error("sub-MinDistance fix should be dropped")
	}
	// Normal movement.
	if !r.Add(Fix{T: 20, Pos: geo.Point{X: 100, Y: 0}}) {
		t.Error("normal fix should be kept")
	}
	// Implausible teleport: 10 km in 1 s.
	if r.Add(Fix{T: 21, Pos: geo.Point{X: 10100, Y: 0}}) {
		t.Error("over-MaxSpeed fix should be dropped")
	}
	// Out of order.
	if r.Add(Fix{T: 15, Pos: geo.Point{X: 200, Y: 0}}) {
		t.Error("out-of-order fix should be dropped")
	}
	// NaN.
	if r.Add(Fix{T: 30, Pos: geo.Point{X: math.NaN(), Y: 0}}) {
		t.Error("NaN fix should be dropped")
	}
	if r.Len() != 2 || r.Dropped() != 4 {
		t.Errorf("kept %d dropped %d, want 2/4", r.Len(), r.Dropped())
	}
}

func TestFinishRequiresTwoFixes(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	if _, err := r.Finish(); err == nil {
		t.Error("empty recording should not finish")
	}
	r.Add(Fix{T: 0, Pos: geo.Point{X: 0, Y: 0}})
	if _, err := r.Finish(); err == nil {
		t.Error("single-fix recording should not finish")
	}
	r.Add(Fix{T: 60, Pos: geo.Point{X: 100, Y: 0}})
	rt, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 2 {
		t.Errorf("Len = %d", rt.Len())
	}
}

func recorded(t *testing.T) *Route {
	t.Helper()
	r := NewRecorder(RecorderConfig{})
	fixes := []Fix{
		{T: 0, Pos: geo.Point{X: 0, Y: 0}},
		{T: 60, Pos: geo.Point{X: 300, Y: 0}},
		{T: 120, Pos: geo.Point{X: 300, Y: 400}},
		{T: 180, Pos: geo.Point{X: 600, Y: 400}},
	}
	for _, f := range fixes {
		if !r.Add(f) {
			t.Fatalf("fix %+v dropped", f)
		}
	}
	rt, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRouteGeometry(t *testing.T) {
	rt := recorded(t)
	if got := rt.Length(); got != 1000 {
		t.Errorf("Length = %v, want 1000", got)
	}
	if got := rt.Duration(); got != 180 {
		t.Errorf("Duration = %v, want 180", got)
	}
	pl, err := rt.Polyline()
	if err != nil {
		t.Fatal(err)
	}
	if pl.Length() != 1000 {
		t.Errorf("polyline length = %v", pl.Length())
	}
	// Fixes returns a defensive copy.
	fs := rt.Fixes()
	fs[0].T = 999
	if rt.Fixes()[0].T != 0 {
		t.Error("Fixes must return a copy")
	}
}

func TestSummarize(t *testing.T) {
	rt := recorded(t)
	// Oracle: pollution grows to the east; one hazardous spot at the last
	// point.
	oracle := func(tm, x, y float64) (float64, error) {
		if x == 600 {
			return 6000, nil
		}
		return 400 + x, nil
	}
	s, err := Summarize(rt, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d", len(s.Points))
	}
	wantAvg := (400 + 700 + 700 + 6000) / 4.0
	if math.Abs(s.Average-wantAvg) > 1e-9 {
		t.Errorf("Average = %v, want %v", s.Average, wantAvg)
	}
	if s.Worst != 3 {
		t.Errorf("Worst = %d, want 3", s.Worst)
	}
	if s.Points[3].Band != eval.BandHazardous {
		t.Errorf("worst band = %v", s.Points[3].Band)
	}
	if s.Points[0].Band != eval.BandFresh {
		t.Errorf("first band = %v", s.Points[0].Band)
	}
	if s.Advice == "" {
		t.Error("missing advice")
	}
}

func TestSummarizeErrors(t *testing.T) {
	rt := recorded(t)
	if _, err := Summarize(nil, func(t, x, y float64) (float64, error) { return 0, nil }); err == nil {
		t.Error("nil route should error")
	}
	if _, err := Summarize(rt, nil); err == nil {
		t.Error("nil oracle should error")
	}
	boom := errors.New("no cover")
	if _, err := Summarize(rt, func(t, x, y float64) (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Errorf("oracle error not propagated: %v", err)
	}
}
