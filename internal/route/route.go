// Package route implements the EnviroMeter application's route recording
// (§3): "The application has the ability to record routes. After a route
// has been recorded, the user can view it on a map. In addition, the
// application presents the average pollution level through the route"
// with OSHA guidance and green-to-red per-point markers.
//
// A Recorder accumulates GPS fixes as the user moves, filtering jitter;
// the finished Route is summarized against any pollution oracle (the
// model-cache client on the phone, or the server's query engine).
package route

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/geo"
)

// Fix is one recorded position update.
type Fix struct {
	T   float64   // stream time, seconds
	Pos geo.Point // local frame
}

// RecorderConfig tunes fix filtering.
type RecorderConfig struct {
	// MinDistance drops fixes closer than this to the previous kept fix
	// (GPS jitter while standing still). Default 10 m.
	MinDistance float64
	// MaxSpeed rejects fixes implying implausible speed since the last
	// kept fix (GPS glitches). Default 70 m/s (~250 km/h).
	MaxSpeed float64
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.MinDistance <= 0 {
		c.MinDistance = 10
	}
	if c.MaxSpeed <= 0 {
		c.MaxSpeed = 70
	}
	return c
}

// Recorder accumulates a route from position updates.
type Recorder struct {
	cfg     RecorderConfig
	fixes   []Fix
	dropped int
}

// NewRecorder starts a recording.
func NewRecorder(cfg RecorderConfig) *Recorder {
	return &Recorder{cfg: cfg.withDefaults()}
}

// Add offers a fix. It returns true if the fix was kept. Fixes must
// arrive in time order; out-of-order fixes are dropped.
func (r *Recorder) Add(f Fix) bool {
	if math.IsNaN(f.T) || math.IsNaN(f.Pos.X) || math.IsNaN(f.Pos.Y) {
		r.dropped++
		return false
	}
	if len(r.fixes) == 0 {
		r.fixes = append(r.fixes, f)
		return true
	}
	last := r.fixes[len(r.fixes)-1]
	if f.T <= last.T {
		r.dropped++
		return false
	}
	d := f.Pos.Dist(last.Pos)
	if d < r.cfg.MinDistance {
		r.dropped++
		return false
	}
	if d/(f.T-last.T) > r.cfg.MaxSpeed {
		r.dropped++
		return false
	}
	r.fixes = append(r.fixes, f)
	return true
}

// Dropped returns how many fixes were filtered out.
func (r *Recorder) Dropped() int { return r.dropped }

// Len returns how many fixes were kept so far.
func (r *Recorder) Len() int { return len(r.fixes) }

// Finish returns the recorded route. At least two fixes are required.
func (r *Recorder) Finish() (*Route, error) {
	if len(r.fixes) < 2 {
		return nil, fmt.Errorf("route: %d fixes recorded, need at least 2", len(r.fixes))
	}
	fixes := make([]Fix, len(r.fixes))
	copy(fixes, r.fixes)
	return &Route{fixes: fixes}, nil
}

// Route is a finished recording.
type Route struct {
	fixes []Fix
}

// Fixes returns a copy of the recorded fixes.
func (rt *Route) Fixes() []Fix {
	cp := make([]Fix, len(rt.fixes))
	copy(cp, rt.fixes)
	return cp
}

// Len returns the number of fixes.
func (rt *Route) Len() int { return len(rt.fixes) }

// Duration returns the elapsed stream time from first to last fix.
func (rt *Route) Duration() float64 {
	return rt.fixes[len(rt.fixes)-1].T - rt.fixes[0].T
}

// Length returns the traveled distance in meters.
func (rt *Route) Length() float64 {
	var total float64
	for i := 1; i < len(rt.fixes); i++ {
		total += rt.fixes[i].Pos.Dist(rt.fixes[i-1].Pos)
	}
	return total
}

// Polyline returns the route's geometry for map display.
func (rt *Route) Polyline() (*geo.Polyline, error) {
	pts := make([]geo.Point, len(rt.fixes))
	for i, f := range rt.fixes {
		pts[i] = f.Pos
	}
	return geo.NewPolyline(pts)
}

// Oracle interpolates pollution at a position and time — the phone's
// model cache or a server engine.
type Oracle func(t, x, y float64) (float64, error)

// PointReading is one route fix with its pollution value and display
// band (the colored marker of the app's map view).
type PointReading struct {
	Fix   Fix
	Value float64
	Band  eval.CO2Band
}

// Summary is what the app shows after a recording: per-point readings,
// the route average, and the OSHA guidance text.
type Summary struct {
	Points  []PointReading
	Average float64
	Band    eval.CO2Band
	Advice  string
	// Worst is the index of the highest-value point (the reddest marker).
	Worst int
}

// Summarize evaluates the route against an oracle.
func Summarize(rt *Route, oracle Oracle) (*Summary, error) {
	if rt == nil || len(rt.fixes) == 0 {
		return nil, errors.New("route: empty route")
	}
	if oracle == nil {
		return nil, errors.New("route: nil oracle")
	}
	s := &Summary{Points: make([]PointReading, 0, len(rt.fixes))}
	var sum float64
	worstVal := math.Inf(-1)
	for i, f := range rt.fixes {
		v, err := oracle(f.T, f.Pos.X, f.Pos.Y)
		if err != nil {
			return nil, fmt.Errorf("route: point %d: %w", i, err)
		}
		s.Points = append(s.Points, PointReading{
			Fix:   f,
			Value: v,
			Band:  eval.ClassifyCO2(v),
		})
		sum += v
		if v > worstVal {
			worstVal, s.Worst = v, i
		}
	}
	s.Average = sum / float64(len(s.Points))
	s.Band = eval.ClassifyCO2(s.Average)
	s.Advice = s.Band.Advice()
	return s, nil
}
