// Multipollutant: the full OpenSense sensor box on the v1 API.
//
// The paper notes the sensed value "could be any of the pollutants that
// are typically monitored: carbon dioxide (CO2), carbon monoxide (CO),
// suspended particulate matter" (§2.2). This example opens one platform
// monitoring all three over a shared bus fleet and queries them at the
// same place and time — the app's pollutant selector, programmatically,
// including one mixed-pollutant batch call.
//
// Run with: go run ./examples/multipollutant
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	pollutants := []repro.Pollutant{repro.CO2, repro.CO, repro.PM}
	p, err := repro.Open(repro.Config{WindowSeconds: 3600, Pollutants: pollutants})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// One fleet, three sensors per bus: the datasets share trajectories.
	data, err := repro.SimulateLausanneMulti(13, 4*3600, pollutants)
	if err != nil {
		log.Fatal(err)
	}
	for pol, readings := range data {
		if err := p.Ingest(ctx, pol, readings); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %6d %s readings\n", len(readings), pol)
	}

	// The same position and time against every pollutant's model cover,
	// answered in one mixed-pollutant batch.
	const t, x, y = 2*3600 + 1800, 1200, 800
	reqs := make([]repro.Request, len(p.Pollutants()))
	for i, pol := range p.Pollutants() {
		reqs[i] = repro.Request{T: t, X: x, Y: y, Pollutant: pol}
	}
	values, err := p.QueryBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconditions at the city center (t = %.0f s):\n", float64(t))
	for i, pol := range p.Pollutants() {
		if values[i].Err != nil {
			fmt.Printf("  %-4s no answer: %v\n", pol, values[i].Err)
			continue
		}
		band := repro.ClassifyPollutant(pol, values[i].Value)
		fmt.Printf("  %-4s %8.1f %-6s [%s]\n", pol, values[i].Value, pol.Unit(), band)
	}
}
