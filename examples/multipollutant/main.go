// Multipollutant: the full OpenSense sensor box.
//
// The paper notes the sensed value "could be any of the pollutants that
// are typically monitored: carbon dioxide (CO2), carbon monoxide (CO),
// suspended particulate matter" (§2.2). This example runs one platform
// per pollutant over a shared bus fleet and queries all three at the same
// place and time — the app's pollutant selector, programmatically.
//
// Run with: go run ./examples/multipollutant
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	pollutants := []repro.Pollutant{repro.CO2, repro.CO, repro.PM}
	obs, err := repro.OpenObservatory(repro.Config{WindowSeconds: 3600}, pollutants)
	if err != nil {
		log.Fatal(err)
	}
	defer obs.Close()

	// One fleet, three sensors per bus: the datasets share trajectories.
	data, err := repro.SimulateLausanneMulti(13, 4*3600, pollutants)
	if err != nil {
		log.Fatal(err)
	}
	for p, readings := range data {
		if err := obs.Ingest(p, readings); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %6d %s readings\n", len(readings), p)
	}

	// The same query against every pollutant's model cover.
	const t, x, y = 2*3600 + 1800, 1200, 800
	fmt.Printf("\nconditions at the city center (t = %.0f s):\n", float64(t))
	for _, p := range obs.Pollutants() {
		v, err := obs.PointQuery(p, t, x, y)
		if err != nil {
			log.Fatal(err)
		}
		band := obs.Classify(p, v)
		unit := p.Unit()
		fmt.Printf("  %-4s %8.1f %-6s [%s]\n", p, v, unit, band)
	}
}
