// Busroute: the Android application scenario (§3 of the paper).
//
// A user records a commute across Lausanne; EnviroMeter answers a
// continuous query along the recorded route, shows each point's CO2 level
// with its green-to-red marker band, and reports the route average with
// the OSHA guideline text — exactly what the demo app displayed after a
// recorded ride.
//
// Run with: go run ./examples/busroute
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	platform, err := repro.Open(repro.Config{WindowSeconds: 4 * 3600})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	readings, err := repro.SimulateLausanne(7, 12*3600)
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Ingest(ctx, repro.CO2, readings); err != nil {
		log.Fatal(err)
	}

	// The recorded route: a commute from the western district through the
	// center to the hill, one position update per minute starting at
	// 08:00. These are local-frame meters; the app records GPS and
	// projects with repro.LausanneProjection().
	waypoints := []repro.Point{
		{X: -800, Y: 350},
		{X: -200, Y: 450},
		{X: 400, Y: 560},
		{X: 900, Y: 700},
		{X: 1200, Y: 800}, // city-center hotspot
		{X: 1150, Y: 1100},
		{X: 1000, Y: 1500},
		{X: 800, Y: 1900},
		{X: 700, Y: 2200},
	}
	const start = 8 * 3600
	queries := make([]repro.Request, len(waypoints))
	for i, wp := range waypoints {
		queries[i] = repro.Request{T: start + float64(i)*60, X: wp.X, Y: wp.Y, Pollutant: repro.CO2}
	}

	// One batch call answers the whole recorded route.
	values, err := platform.QueryBatch(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("recorded route, 08:00, one update per minute:")
	var sum float64
	answered := 0
	for i, res := range values {
		if res.Err != nil {
			fmt.Printf("  %2d. (%6.0f, %6.0f)  no answer: %v\n",
				i+1, queries[i].X, queries[i].Y, res.Err)
			continue
		}
		band := repro.ClassifyCO2(res.Value)
		fmt.Printf("  %2d. (%6.0f, %6.0f)  %6.0f ppm  %-10s\n",
			i+1, queries[i].X, queries[i].Y, res.Value, band)
		sum += res.Value
		answered++
	}
	if answered == 0 {
		log.Fatal("no route point could be answered")
	}
	avg := sum / float64(answered)
	band := repro.ClassifyCO2(avg)
	fmt.Printf("\nroute average: %.0f ppm [%s]\n", avg, band)
	fmt.Println(band.Advice())
}
