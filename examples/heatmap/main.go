// Heatmap: the web-interface scenario (§3, Figure 5b).
//
// Build the model cover over a window of community-sensed data, rasterize
// it into a city heatmap, write it as a PNG on the app's green-to-red
// scale, and list the "emitting points" — the Ad-KMN centroids with their
// pollution levels — exactly what the demo's heatmap visualization showed.
//
// Run with: go run ./examples/heatmap [-out heatmap.png]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/heatmap"
)

func main() {
	out := flag.String("out", "heatmap.png", "output PNG path")
	flag.Parse()

	ctx := context.Background()
	platform, err := repro.Open(repro.Config{WindowSeconds: 4 * 3600})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	readings, err := repro.SimulateLausanne(11, 8*3600)
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Ingest(ctx, repro.CO2, readings); err != nil {
		log.Fatal(err)
	}

	// Rasterize the cover seven hours into the stream, over the sensed
	// region.
	const t = 7 * 3600
	grid, err := platform.Heatmap(ctx, repro.CO2, t, 256, 192)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := grid.WritePNG(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	min, max := grid.MinMax()
	fmt.Printf("wrote %s (%dx%d, CO2 %.0f–%.0f ppm)\n", *out, grid.Cols, grid.Rows, min, max)

	// The emitting points: centroids computed by Ad-KMN with their levels.
	cover, err := platform.Cover(ctx, repro.CO2, t)
	if err != nil {
		log.Fatal(err)
	}
	markers, err := heatmap.Markers(cover, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d emitting points (Ad-KMN centroids):\n", len(markers))
	for i, m := range markers {
		if i >= 10 {
			fmt.Printf("  … and %d more\n", len(markers)-10)
			break
		}
		fmt.Printf("  (%7.0f, %7.0f)  %6.0f ppm  %s\n", m.Pos.X, m.Pos.Y, m.Value, m.Band)
	}
}
