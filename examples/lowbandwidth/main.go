// Lowbandwidth: the Figure 7(b) scenario as a runnable program.
//
// A mobile object registers a 100-tuple continuous query over a simulated
// GPRS link, once with the baseline strategy (every query tuple is a round
// trip) and once with the model-cache strategy (download the model cover
// once, answer locally until it expires). The program prints the bytes and
// air time each strategy cost the device.
//
// This example wires the internal client/transport machinery directly (it
// lives in the same module); an external application would speak the HTTP
// API of repro.Platform instead.
//
// Run with: go run ./examples/lowbandwidth
package main

import (
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wire"
)

func main() {
	// Server side: four hours of simulated deployment data in a store with
	// a window long enough to cover the whole continuous query.
	cfg := sim.DefaultLausanne(3)
	cfg.Duration = 4 * 3600
	data, err := sim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(store.Config{WindowLength: 2 * 3600})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Append(data); err != nil {
		log.Fatal(err)
	}
	engine := server.NewEngine(st, core.Config{})
	defer engine.Close()

	// The mobile object walks through the center for 100 minutes starting
	// at t = 2 h, sending one CO2 query tuple per minute (a Request's zero
	// Pollutant is CO2).
	queries := make([]query.Request, 100)
	for i := range queries {
		queries[i] = query.Request{
			T: 2*3600 + float64(i)*60,
			X: 600 + 8*float64(i),
			Y: 500 + 6*float64(i),
		}
	}

	for _, mk := range []func(client.Transport) client.Strategy{
		func(t client.Transport) client.Strategy { return client.NewBaseline(t) },
		func(t client.Transport) client.Strategy { return client.NewModelCache(t) },
	} {
		link, err := netsim.NewLink(netsim.GPRS())
		if err != nil {
			log.Fatal(err)
		}
		strategy := mk(&client.LinkTransport{Link: link, Codec: wire.Binary, Handler: engine})
		answers, err := client.RunContinuous(strategy, queries)
		if err != nil {
			log.Fatal(err)
		}
		stats := link.Stats()
		local := 0
		for _, a := range answers {
			if a.Local {
				local++
			}
		}
		fmt.Printf("%-12s sent %7.2f KB  received %7.2f KB  air time %6.1f s  round trips %3d  local answers %3d\n",
			strategy.Name(),
			float64(stats.SentBytes)/1024,
			float64(stats.ReceivedBytes)/1024,
			stats.SimSeconds,
			stats.Exchanges,
			local)
	}
	fmt.Println("\nthe model-cache strategy pays one model download and then answers on-device —")
	fmt.Println("the mechanism behind the paper's ~two-orders-of-magnitude bandwidth savings.")
}
