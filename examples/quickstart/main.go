// Quickstart: the minimal end-to-end EnviroMeter flow on the v1 API.
//
// Simulate a morning of community-sensed CO2 data, ingest it into the
// platform, and ask for the pollution at a position — first as a raw
// value, then with the OSHA classification the app displays.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()

	// A platform with one-hour modeling windows, in memory. Without
	// Config.Pollutants it monitors CO2 alone.
	platform, err := repro.Open(repro.Config{WindowSeconds: 3600})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// Six hours of the simulated Lausanne deployment: two bus lines, four
	// vehicles, one CO2 sample per vehicle per minute.
	readings, err := repro.SimulateLausanne(42, 6*3600)
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Ingest(ctx, repro.CO2, readings); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d raw tuples\n", platform.Len())

	// Ingestion already queued every touched window for a background
	// model build (see Config.Maintenance to tune or disable this).
	// Waiting here is optional — a query would simply build on demand —
	// but it shows the covers arriving off the query path.
	platform.WaitMaintenance()
	fmt.Printf("background builds: %d covers ready\n", platform.MaintenanceStats().Built)

	// Point query: the CO2 concentration near the city-center plume at
	// 05:30 into the stream (t = 19800 s), answered from the window's
	// Ad-KMN model cover. The zero Pollutant of a Request is CO2.
	req := repro.Request{T: 19800, X: 1200, Y: 800, Pollutant: repro.CO2}
	value, err := platform.Query(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	band := repro.ClassifyCO2(value)
	fmt.Printf("CO2 at (%.0f m, %.0f m) at t=%.0fs: %.0f ppm [%s]\n",
		req.X, req.Y, req.T, value, band)
	fmt.Println(band.Advice())

	// The model cover behind that answer.
	cover, err := platform.Cover(ctx, repro.CO2, req.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model cover: %d regions, valid until t=%.0fs, built in %d adaptive rounds\n",
		cover.Size(), cover.ValidUntil, cover.Rounds)
}
