package repro

// Restart equivalence: a platform closed and reopened over the same
// durable directory must answer queries and heatmaps identically to the
// pre-restart instance, under every sync policy, with and without
// checkpoints, and its /v1/stats counters must reset sanely (data
// counters preserved, pipeline counters zeroed, recovery reported).

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

// restartProbe captures the externally observable answers of a
// platform: point queries across several windows and a heatmap raster.
type restartProbe struct {
	values []float64
	errs   []bool
	grid   []float64
}

func probePlatform(t *testing.T, p *Platform) restartProbe {
	t.Helper()
	ctx := context.Background()
	var pr restartProbe
	for _, pol := range []Pollutant{CO2, CO} {
		for _, tm := range []float64{1800, 5400, 9000} {
			for _, xy := range [][2]float64{{200, 300}, {900, 1100}} {
				v, err := p.Query(ctx, Request{T: tm, X: xy[0], Y: xy[1], Pollutant: pol})
				pr.values = append(pr.values, v)
				pr.errs = append(pr.errs, err != nil)
			}
		}
	}
	g, err := p.Heatmap(ctx, CO2, 5400, 16, 16)
	if err == nil {
		pr.grid = g.Values
	}
	return pr
}

func (pr restartProbe) equal(other restartProbe) bool {
	if len(pr.values) != len(other.values) || len(pr.grid) != len(other.grid) {
		return false
	}
	for i := range pr.values {
		if pr.errs[i] != other.errs[i] || pr.values[i] != other.values[i] {
			return false
		}
	}
	for i := range pr.grid {
		if pr.grid[i] != other.grid[i] {
			return false
		}
	}
	return true
}

type statsProbe struct {
	Tuples  int `json:"tuples"`
	Windows int `json:"windows"`
	Ingest  struct {
		Submitted int64 `json:"submitted"`
		Tuples    int64 `json:"tuples"`
	} `json:"ingest"`
	Checkpoint struct {
		Checkpoints     int64 `json:"checkpoints"`
		RecoveredShards int   `json:"recoveredShards"`
	} `json:"checkpoint"`
}

func fetchStats(t *testing.T, p *Platform) statsProbe {
	t.Helper()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sp statsProbe
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestRestartEquivalence(t *testing.T) {
	cases := []struct {
		name       string
		sync       SyncPolicy
		checkpoint CheckpointConfig
	}{
		{"every-batch", SyncEveryBatch(), CheckpointConfig{}},
		{"grouped", SyncGrouped(8, time.Millisecond), CheckpointConfig{}},
		{"never", SyncNever(), CheckpointConfig{}},
		{"every-batch-checkpointed", SyncEveryBatch(), CheckpointConfig{Interval: time.Hour}},
		{"never-checkpointed-keep", SyncNever(), CheckpointConfig{Interval: time.Hour, KeepSegments: 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cfg := Config{
				WindowSeconds: 3600,
				Pollutants:    []Pollutant{CO2, CO},
				Dir:           dir,
				Sync:          tc.sync,
				Checkpoint:    tc.checkpoint,
				CoverSnapshot: filepath.Join(dir, "covers.emcv"),
				Retain:        4,
			}
			p, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			readings, err := SimulateLausanne(7, 3*3600)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for _, pol := range []Pollutant{CO2, CO} {
				if err := p.Ingest(ctx, pol, readings); err != nil {
					t.Fatal(err)
				}
			}
			p.WaitMaintenance()
			before := probePlatform(t, p)
			beforeStats := fetchStats(t, p)
			if beforeStats.Ingest.Submitted == 0 {
				t.Fatal("pre-restart stats recorded no ingest")
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			p2, err := Open(cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer p2.Close()
			p2.WaitMaintenance()
			after := probePlatform(t, p2)
			if !after.equal(before) {
				t.Errorf("restart changed answers:\n before %v\n after  %v", before.values, after.values)
			}
			afterStats := fetchStats(t, p2)
			if afterStats.Tuples != beforeStats.Tuples || afterStats.Windows != beforeStats.Windows {
				t.Errorf("data counters drifted across restart: %+v vs %+v", afterStats, beforeStats)
			}
			if afterStats.Ingest.Submitted != 0 || afterStats.Ingest.Tuples != 0 {
				t.Errorf("pipeline counters not reset: %+v", afterStats.Ingest)
			}
			if tc.checkpoint.Interval > 0 {
				// Close checkpointed; the reopen must have recovered both
				// shards from those checkpoints.
				if afterStats.Checkpoint.RecoveredShards != 2 {
					t.Errorf("RecoveredShards = %d, want 2", afterStats.Checkpoint.RecoveredShards)
				}
			} else if afterStats.Checkpoint.RecoveredShards != 0 {
				t.Errorf("recovered from a checkpoint that was never taken: %+v", afterStats.Checkpoint)
			}
		})
	}
}

// TestPlatformManualCheckpoint exercises the facade-level trigger: a
// checkpoint mid-flight persists both the raw windows and the cover
// snapshots, and a crash (no Close) after it still recovers everything
// acknowledged, covers warm.
func TestPlatformManualCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		WindowSeconds: 3600,
		Pollutants:    []Pollutant{CO2},
		Dir:           dir,
		CoverSnapshot: filepath.Join(dir, "covers.emcv"),
	}
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	readings, err := SimulateLausanne(11, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Ingest(ctx, CO2, readings); err != nil {
		t.Fatal(err)
	}
	p.WaitMaintenance()
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cs := p.CheckpointStats()
	if cs.Checkpoints != 1 {
		t.Fatalf("CheckpointStats = %+v, want 1 checkpoint", cs)
	}
	want, err := p.Query(ctx, Request{T: 1800, X: 500, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash by abandoning the platform and opening
	// the directory fresh.
	p2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.CheckpointStats(); got.RecoveredShards != 1 {
		t.Fatalf("RecoveredShards = %d, want 1 (stats: %+v)", got.RecoveredShards, got)
	}
	got, err := p2.Query(ctx, Request{T: 1800, X: 500, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-crash answer %v, want %v", got, want)
	}
}
