package repro

// Tests for the v1 query API: Request validation, the error taxonomy
// under errors.Is, per-pollutant cover isolation, context cancellation,
// per-call processor options, streaming ingestion, and the pollutant-
// aware HTTP surface.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/tuple"
	"repro/internal/wire"
)

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name    string
		req     Request
		wantErr error // nil = valid, non-nil = errors.Is target
		bad     bool  // expect some error
	}{
		{name: "valid zero", req: Request{}},
		{name: "valid co", req: Request{T: 10, X: 1, Y: 2, Pollutant: CO}},
		{name: "valid pm", req: Request{T: 10, Pollutant: PM}},
		{name: "negative time", req: Request{T: -1}, wantErr: ErrOutOfWindow, bad: true},
		{name: "unknown pollutant", req: Request{Pollutant: Pollutant(42)}, wantErr: ErrUnknownPollutant, bad: true},
		{name: "nan t", req: Request{T: math.NaN()}, bad: true},
		{name: "inf x", req: Request{X: math.Inf(1)}, bad: true},
		{name: "nan y", req: Request{Y: math.NaN()}, bad: true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.req.Validate()
			if tt.bad && err == nil {
				t.Fatal("want error, got nil")
			}
			if !tt.bad && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("errors.Is(%v, %v) = false", err, tt.wantErr)
			}
		})
	}
}

// openMulti opens a platform monitoring CO2 and PM with two hours of
// shared-fleet data in hour-long windows.
func openMulti(t *testing.T) *Platform {
	t.Helper()
	pollutants := []Pollutant{CO2, PM}
	p, err := Open(Config{WindowSeconds: 3600, Pollutants: pollutants})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	data, err := SimulateLausanneMulti(6, 2*3600, pollutants)
	if err != nil {
		t.Fatal(err)
	}
	for pol, readings := range data {
		if err := p.Ingest(context.Background(), pol, readings); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPerPollutantCoverIsolation(t *testing.T) {
	p := openMulti(t)
	ctx := context.Background()

	co2, err := p.Query(ctx, Request{T: 1800, X: 1200, Y: 800, Pollutant: CO2})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := p.Query(ctx, Request{T: 1800, X: 1200, Y: 800, Pollutant: PM})
	if err != nil {
		t.Fatal(err)
	}
	// CO2 sits in the hundreds of ppm, PM in tens of µg/m³: if the shards
	// leaked into each other the magnitudes would collapse.
	if co2 < 300 || pm <= 0 || pm >= co2 {
		t.Errorf("isolation broken: co2=%v pm=%v", co2, pm)
	}

	// Each pollutant's cover carries its own tag.
	cvCO2, err := p.Cover(ctx, CO2, 1800)
	if err != nil {
		t.Fatal(err)
	}
	cvPM, err := p.Cover(ctx, PM, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if cvCO2.Pollutant != CO2 || cvPM.Pollutant != PM {
		t.Errorf("cover pollutants = %v / %v, want CO2 / PM", cvCO2.Pollutant, cvPM.Pollutant)
	}
	if cvCO2 == cvPM {
		t.Error("both pollutants share one cover")
	}

	// Ingesting late CO2 data must not disturb the PM shard's store.
	pmLen, err := p.LenFor(PM)
	if err != nil {
		t.Fatal(err)
	}
	late := []Reading{{T: 100, X: 1, Y: 1, S: 500}}
	if err := p.Ingest(ctx, CO2, late); err != nil {
		t.Fatal(err)
	}
	pmLenAfter, err := p.LenFor(PM)
	if err != nil {
		t.Fatal(err)
	}
	if pmLen != pmLenAfter {
		t.Errorf("PM shard grew on CO2 ingest: %d -> %d", pmLen, pmLenAfter)
	}
}

func TestErrorTaxonomyErrorsIs(t *testing.T) {
	p := openMulti(t)
	ctx := context.Background()

	// Monitored pollutant, time beyond the data: out of window.
	if _, err := p.Query(ctx, Request{T: 1e9, X: 0, Y: 0}); !errors.Is(err, ErrOutOfWindow) {
		t.Errorf("far-future query: got %v, want ErrOutOfWindow", err)
	}
	// Negative time: out of window.
	if _, err := p.Query(ctx, Request{T: -5}); !errors.Is(err, ErrOutOfWindow) {
		t.Errorf("negative-time query: got %v, want ErrOutOfWindow", err)
	}
	// Unmonitored (but valid) pollutant: unknown pollutant.
	if _, err := p.Query(ctx, Request{T: 1800, Pollutant: CO}); !errors.Is(err, ErrUnknownPollutant) {
		t.Errorf("unmonitored pollutant: got %v, want ErrUnknownPollutant", err)
	}
	// Invalid pollutant value: unknown pollutant.
	if _, err := p.Query(ctx, Request{T: 1800, Pollutant: Pollutant(9)}); !errors.Is(err, ErrUnknownPollutant) {
		t.Errorf("invalid pollutant: got %v, want ErrUnknownPollutant", err)
	}
	// The taxonomy flows through batch calls too — per item: the bad
	// request carries its error, the good one still answers.
	rs, err := p.QueryBatch(ctx, []Request{{T: 1800}, {T: 1e9}})
	if err != nil {
		t.Fatalf("batch with bad item: call-level error %v", err)
	}
	if rs[0].Err != nil {
		t.Errorf("batch good item: got %v, want success", rs[0].Err)
	}
	if !errors.Is(rs[1].Err, ErrOutOfWindow) {
		t.Errorf("batch bad item: got %v, want ErrOutOfWindow", rs[1].Err)
	}
	// And through Cover / ModelResponse / Heatmap.
	if _, err := p.Cover(ctx, CO, 1800); !errors.Is(err, ErrUnknownPollutant) {
		t.Errorf("Cover: got %v, want ErrUnknownPollutant", err)
	}
	if _, err := p.ModelResponse(ctx, CO2, 1e9); !errors.Is(err, ErrOutOfWindow) {
		t.Errorf("ModelResponse: got %v, want ErrOutOfWindow", err)
	}
	if _, err := p.Heatmap(ctx, CO, 1800, 8, 8); !errors.Is(err, ErrUnknownPollutant) {
		t.Errorf("Heatmap: got %v, want ErrUnknownPollutant", err)
	}
}

func TestQueryBatchContextCancellation(t *testing.T) {
	p := openMulti(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the batch must stop before any work
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{T: 1800, X: float64(i), Y: float64(i)}
	}
	_, err := p.QueryBatch(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: got %v, want context.Canceled", err)
	}
	// A live context still answers.
	if _, err := p.QueryBatch(context.Background(), reqs[:4]); err != nil {
		t.Fatalf("live batch failed: %v", err)
	}
}

func TestQueryDeadlineExceeded(t *testing.T) {
	p := openMulti(t)
	ctx, cancel := context.WithTimeout(context.Background(), -time.Nanosecond)
	defer cancel()
	if _, err := p.Query(ctx, Request{T: 1800}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryOptionsSelectProcessors(t *testing.T) {
	p := openMulti(t)
	ctx := context.Background()
	req := Request{T: 1800, X: 1200, Y: 800}

	cover, err := p.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := p.Query(ctx, req, WithRadius(400))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := p.Query(ctx, req, WithProcessor(ProcessorRTree), WithRadius(400))
	if err != nil {
		t.Fatal(err)
	}
	vp, err := p.Query(ctx, req, WithProcessor(ProcessorVPTree), WithRadius(400))
	if err != nil {
		t.Fatal(err)
	}
	// The three radius methods share semantics exactly; the cover answers
	// from models, so it only needs to be physically consistent.
	if rt != naive || vp != naive {
		t.Errorf("radius methods disagree: naive=%v rtree=%v vptree=%v", naive, rt, vp)
	}
	if cover < 300 || cover > 5000 {
		t.Errorf("cover answer %v outside physical range", cover)
	}
}

func TestIngestReaderStreamsCSV(t *testing.T) {
	p, err := Open(Config{WindowSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var sb strings.Builder
	sb.WriteString("t,x,y,s\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("60,100,200,450\n")
	}
	n, err := p.IngestReader(context.Background(), CO2, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || p.Len() != 100 {
		t.Errorf("streamed %d tuples, platform holds %d; want 100/100", n, p.Len())
	}
	// A cancelled context stops the stream.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.IngestReader(ctx, CO2, strings.NewReader(sb.String())); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled stream: got %v, want context.Canceled", err)
	}
}

func TestHTTPV1QueryPollutantParam(t *testing.T) {
	p := openMulti(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	fetch := func(url string) (map[string]interface{}, int) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m, resp.StatusCode
	}

	co2, status := fetch(srv.URL + "/v1/query?t=1800&x=1200&y=800&pollutant=co2")
	if status != http.StatusOK {
		t.Fatalf("co2 status = %d", status)
	}
	pm, status := fetch(srv.URL + "/v1/query?t=1800&x=1200&y=800&pollutant=pm")
	if status != http.StatusOK {
		t.Fatalf("pm status = %d", status)
	}
	if co2["pollutant"] != "CO2" || pm["pollutant"] != "PM" {
		t.Errorf("pollutant echo: co2=%v pm=%v", co2["pollutant"], pm["pollutant"])
	}
	if co2["unit"] != "ppm" || pm["unit"] != "µg/m³" {
		t.Errorf("units: co2=%v pm=%v", co2["unit"], pm["unit"])
	}
	if co2["value"].(float64) <= pm["value"].(float64) {
		t.Errorf("magnitudes collapsed: co2=%v pm=%v", co2["value"], pm["value"])
	}

	// Unknown pollutant is a 400; unmonitored valid pollutant too.
	if _, status := fetch(srv.URL + "/v1/query?t=1800&x=0&y=0&pollutant=no2"); status != http.StatusBadRequest {
		t.Errorf("unknown pollutant: status %d, want 400", status)
	}
	if _, status := fetch(srv.URL + "/v1/query?t=1800&x=0&y=0&pollutant=co"); status != http.StatusBadRequest {
		t.Errorf("unmonitored pollutant: status %d, want 400", status)
	}
	// Out-of-window time is a 404.
	if _, status := fetch(srv.URL + "/v1/query?t=999999999&x=0&y=0"); status != http.StatusNotFound {
		t.Errorf("out of window: status %d, want 404", status)
	}
	// The processor parameter selects radius methods.
	if _, status := fetch(srv.URL + "/v1/query?t=1800&x=1200&y=800&processor=naive&radius=400"); status != http.StatusOK {
		t.Errorf("naive processor: status %d", status)
	}
	// A bare radius switches to the naive method (mirrors WithRadius):
	// its answer must match the explicit processor=naive call.
	naive, status := fetch(srv.URL + "/v1/query?t=1800&x=1200&y=800&processor=naive&radius=400")
	if status != http.StatusOK {
		t.Fatalf("naive status = %d", status)
	}
	bare, status := fetch(srv.URL + "/v1/query?t=1800&x=1200&y=800&radius=400")
	if status != http.StatusOK {
		t.Fatalf("bare radius status = %d", status)
	}
	if naive["value"] != bare["value"] {
		t.Errorf("bare radius %v != naive %v", bare["value"], naive["value"])
	}
	// NaN coordinates are a malformed request, not missing data.
	if _, status := fetch(srv.URL + "/v1/query?t=1800&x=NaN&y=800"); status != http.StatusBadRequest {
		t.Errorf("NaN coordinate: status %d, want 400", status)
	}
}

func TestHTTPV1Batch(t *testing.T) {
	p := openMulti(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := []byte(`{"requests":[
		{"t":1800,"x":1200,"y":800,"pollutant":"CO2"},
		{"t":1800,"x":1200,"y":800,"pollutant":"PM"},
		{"t":1800,"x":0,"y":0}
	]}`)
	resp, err := http.Post(srv.URL+"/v1/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var br struct {
		Values []struct {
			Value     float64 `json:"value"`
			Pollutant string  `json:"pollutant"`
		} `json:"values"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Values) != 3 {
		t.Fatalf("values = %d, want 3", len(br.Values))
	}
	if br.Values[0].Pollutant != "CO2" || br.Values[1].Pollutant != "PM" || br.Values[2].Pollutant != "CO2" {
		t.Errorf("batch pollutants: %+v", br.Values)
	}

	// Empty batch is a bad request.
	resp2, err := http.Post(srv.URL+"/v1/query/batch", "application/json",
		strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp2.StatusCode)
	}
}

func TestHTTPV1BatchPerItemErrors(t *testing.T) {
	// A bad request no longer rejects the batch: the response is 200 with
	// the failing item carrying its own error.
	p := openMulti(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := []byte(`{"requests":[
		{"t":1800,"x":1200,"y":800,"pollutant":"CO2"},
		{"t":9e8,"x":0,"y":0,"pollutant":"CO2"},
		{"t":1800,"x":1200,"y":800,"pollutant":"PM"}
	]}`)
	resp, err := http.Post(srv.URL+"/v1/query/batch?concurrency=2", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	var br struct {
		Values []struct {
			Value     float64 `json:"value"`
			Pollutant string  `json:"pollutant"`
			Error     string  `json:"error"`
		} `json:"values"`
		Errors int `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Values) != 3 || br.Errors != 1 {
		t.Fatalf("values = %d, errors = %d, want 3 and 1", len(br.Values), br.Errors)
	}
	if br.Values[0].Error != "" || br.Values[2].Error != "" {
		t.Errorf("good items errored: %+v", br.Values)
	}
	if br.Values[1].Error == "" {
		t.Error("out-of-window item must carry an error")
	}
	if br.Values[0].Pollutant != "CO2" || br.Values[2].Pollutant != "PM" {
		t.Errorf("batch pollutants: %+v", br.Values)
	}
}

func TestHTTPV1PollutantsDiscovery(t *testing.T) {
	p := openMulti(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/pollutants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d struct {
		Pollutants []string `json:"pollutants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if strings.Join(d.Pollutants, ",") != "CO2,PM" {
		t.Errorf("pollutants = %v", d.Pollutants)
	}
}

func TestWireProtocolPerPollutant(t *testing.T) {
	// The pollutant byte travels end-to-end over real TCP: the same
	// position asks for two pollutants and gets two different answers.
	p := openMulti(t)
	srv, addr, err := p.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := proto.Dial(addr.String(), proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	values := map[Pollutant]float64{}
	for _, pol := range []Pollutant{CO2, PM} {
		resp, err := c.Exchange(wire.QueryRequest{T: 1800, X: 1200, Y: 800, Pollutant: pol})
		if err != nil {
			t.Fatal(err)
		}
		qr, ok := resp.(wire.QueryResponse)
		if !ok {
			t.Fatalf("%v: got %T", pol, resp)
		}
		values[pol] = qr.Value
	}
	if values[CO2] <= values[PM] {
		t.Errorf("wire answers collapsed: %v", values)
	}

	// Model downloads carry the right pollutant tag.
	resp, err := c.Exchange(wire.ModelRequest{T: 1800, Pollutant: PM})
	if err != nil {
		t.Fatal(err)
	}
	mr, ok := resp.(wire.ModelResponse)
	if !ok {
		t.Fatalf("got %T", resp)
	}
	if tuple.Pollutant(mr.Pollutant) != PM {
		t.Errorf("model response pollutant = %v, want PM", mr.Pollutant)
	}

	// An unmonitored pollutant travels back as an ErrorResponse.
	resp, err = c.Exchange(wire.QueryRequest{T: 1800, Pollutant: CO})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(wire.ErrorResponse); !ok {
		t.Errorf("unmonitored pollutant over wire: got %T, want ErrorResponse", resp)
	}
}
