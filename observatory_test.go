package repro

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openObservatory(t *testing.T) *Observatory {
	t.Helper()
	o, err := OpenObservatory(Config{WindowSeconds: 3600}, []Pollutant{CO2, CO, PM})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { o.Close() })
	data, err := SimulateLausanneMulti(4, 2*3600, []Pollutant{CO2, CO, PM})
	if err != nil {
		t.Fatal(err)
	}
	for p, readings := range data {
		if err := o.Ingest(p, readings); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestOpenObservatoryValidation(t *testing.T) {
	if _, err := OpenObservatory(Config{WindowSeconds: 10}, nil); err == nil {
		t.Error("no pollutants should error")
	}
	if _, err := OpenObservatory(Config{WindowSeconds: 10}, []Pollutant{CO2, CO2}); err == nil {
		t.Error("duplicate pollutants should error")
	}
	if _, err := OpenObservatory(Config{WindowSeconds: 10}, []Pollutant{Pollutant(77)}); err == nil {
		t.Error("invalid pollutant should error")
	}
	if _, err := OpenObservatory(Config{WindowSeconds: 0}, []Pollutant{CO2}); err == nil {
		t.Error("bad platform config should error")
	}
}

func TestObservatoryPerPollutantQueries(t *testing.T) {
	o := openObservatory(t)
	co2, err := o.PointQuery(CO2, 1800, 1200, 800)
	if err != nil {
		t.Fatal(err)
	}
	co, err := o.PointQuery(CO, 1800, 1200, 800)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := o.PointQuery(PM, 1800, 1200, 800)
	if err != nil {
		t.Fatal(err)
	}
	// Magnitudes must be pollutant-appropriate: CO2 in the hundreds of
	// ppm, CO in single-digit-to-tens ppm, PM in tens of µg/m³.
	if co2 < 300 || co2 > 3000 {
		t.Errorf("CO2 = %v, implausible", co2)
	}
	if co < 0 || co > 40 {
		t.Errorf("CO = %v, implausible", co)
	}
	if pm < 0 || pm > 400 {
		t.Errorf("PM = %v, implausible", pm)
	}
	if co >= co2 || pm >= co2 {
		t.Errorf("magnitude ordering broken: co2=%v co=%v pm=%v", co2, co, pm)
	}
	if _, err := o.PointQuery(Pollutant(9), 1800, 0, 0); err == nil {
		t.Error("unmonitored pollutant should error")
	}
}

func TestObservatoryPollutantsSorted(t *testing.T) {
	o := openObservatory(t)
	got := o.Pollutants()
	if len(got) != 3 || got[0] != CO2 || got[1] != CO || got[2] != PM {
		t.Errorf("Pollutants = %v", got)
	}
}

func TestObservatoryHTTPRouting(t *testing.T) {
	o := openObservatory(t)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// Pollutant discovery.
	resp, err := http.Get(srv.URL + "/v1/pollutants")
	if err != nil {
		t.Fatal(err)
	}
	var disc struct {
		Pollutants []string `json:"pollutants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&disc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if strings.Join(disc.Pollutants, ",") != "CO2,CO,PM" {
		t.Errorf("pollutants = %v", disc.Pollutants)
	}

	// Per-pollutant point queries route to the right platform.
	values := map[string]float64{}
	for _, name := range disc.Pollutants {
		resp, err := http.Get(srv.URL + "/" + name + "/v1/query/point?t=1800&x=1200&y=800")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		var pr struct {
			Value float64 `json:"value"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		values[name] = pr.Value
	}
	if !(values["CO2"] > values["PM"] && values["PM"] > values["CO"]) {
		t.Errorf("per-pollutant values not distinct: %v", values)
	}

	// Batch queries honor the routed pollutant too: untagged requests
	// posted under /PM/ must answer for PM, not the default (CO2).
	bresp, err := http.Post(srv.URL+"/PM/v1/query/batch", "application/json",
		strings.NewReader(`{"requests":[{"t":1800,"x":1200,"y":800}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var br struct {
		Values []struct {
			Value     float64 `json:"value"`
			Pollutant string  `json:"pollutant"`
		} `json:"values"`
	}
	if err := json.NewDecoder(bresp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if len(br.Values) != 1 || br.Values[0].Pollutant != "PM" {
		t.Fatalf("routed batch answered %+v, want PM", br.Values)
	}
	if got := br.Values[0].Value; got != values["PM"] {
		t.Errorf("routed batch value %v != point value %v", got, values["PM"])
	}

	// Unknown pollutant prefix 404s.
	resp, err = http.Get(srv.URL + "/NO2/v1/query/point?t=1800&x=0&y=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown pollutant: status %d", resp.StatusCode)
	}
}

func TestObservatoryDurableLayoutPerPollutant(t *testing.T) {
	// A single-pollutant Observatory has always persisted into Dir/<pol>;
	// the multi-pollutant Platform underneath must keep that layout so
	// pre-existing deployments recover their data.
	dir := t.TempDir()
	o, err := OpenObservatory(Config{WindowSeconds: 3600, Dir: dir}, []Pollutant{CO2})
	if err != nil {
		t.Fatal(err)
	}
	readings, err := SimulateLausanne(3, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Ingest(CO2, readings); err != nil {
		t.Fatal(err)
	}
	n := len(readings)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "CO2"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("expected segments under %s/CO2: err=%v entries=%d", dir, err, len(entries))
	}
	o2, err := OpenObservatory(Config{WindowSeconds: 3600, Dir: dir}, []Pollutant{CO2})
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	if got := o2.Platform().Len(); got != n {
		t.Errorf("recovered %d readings, want %d", got, n)
	}
}

func TestObservatoryClassify(t *testing.T) {
	o := openObservatory(t)
	if o.Classify(CO2, 450).String() != "fresh" {
		t.Error("CO2 450 should be fresh")
	}
	if o.Classify(CO, 20).String() != "hazardous" {
		t.Error("CO 20 should be hazardous")
	}
	if o.Classify(PM, 100).String() != "acceptable" {
		t.Error("PM 100 should be acceptable")
	}
}

func TestClassifyPollutantBands(t *testing.T) {
	cases := []struct {
		p    Pollutant
		v    float64
		want string
	}{
		{CO, 2, "fresh"},
		{CO, 8, "acceptable"},
		{CO, 11, "drowsy"},
		{CO, 14, "poor"},
		{CO, 30, "hazardous"},
		{PM, 20, "fresh"},
		{PM, 100, "acceptable"},
		{PM, 200, "drowsy"},
		{PM, 300, "poor"},
		{PM, 500, "hazardous"},
		{CO2, 450, "fresh"},
	}
	for _, tt := range cases {
		if got := ClassifyPollutant(tt.p, tt.v).String(); got != tt.want {
			t.Errorf("ClassifyPollutant(%v, %v) = %s, want %s", tt.p, tt.v, got, tt.want)
		}
	}
	// Unknown pollutant classifies by range fraction without panicking.
	if got := ClassifyPollutant(Pollutant(8), 0.5); got.String() == "" {
		t.Error("unknown pollutant should still classify")
	}
}
