package repro

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// openWithData opens an in-memory platform holding 6 hours of simulated
// deployment data with hour-long windows.
func openWithData(t *testing.T) *Platform {
	t.Helper()
	p, err := Open(Config{WindowSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	readings, err := SimulateLausanne(1, 6*3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(context.Background(), CO2, readings); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOpenValidatesConfig(t *testing.T) {
	if _, err := Open(Config{WindowSeconds: 0}); err == nil {
		t.Error("zero window must error")
	}
}

func TestEndToEndPointQuery(t *testing.T) {
	p := openWithData(t)
	defer p.Close()
	if p.Len() < 1000 {
		t.Fatalf("Len = %d", p.Len())
	}
	v, err := p.Query(context.Background(), Request{T: 2 * 3600, X: 1200, Y: 800})
	if err != nil {
		t.Fatal(err)
	}
	if v < 300 || v > 5000 {
		t.Errorf("Query = %v, outside physical range", v)
	}
}

func TestContinuousQuery(t *testing.T) {
	p := openWithData(t)
	defer p.Close()
	qs := []Request{
		{T: 7200, X: 0, Y: 500},
		{T: 7260, X: 300, Y: 550},
		{T: 7320, X: 600, Y: 620},
	}
	vs, err := p.QueryBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("got %d values", len(vs))
	}
	if _, err := p.QueryBatch(context.Background(), nil); err == nil {
		t.Error("empty batch must error")
	}
}

func TestCoverAndModelResponse(t *testing.T) {
	p := openWithData(t)
	defer p.Close()
	cv, err := p.Cover(context.Background(), CO2, 7200)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() == 0 || !cv.ValidAt(7200) {
		t.Errorf("cover size=%d validAt=%v", cv.Size(), cv.ValidAt(7200))
	}
	mr, err := p.ModelResponse(context.Background(), CO2, 7200)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centroids) != cv.Size() {
		t.Errorf("response has %d centroids, cover %d", len(mr.Centroids), cv.Size())
	}
}

func TestHeatmapFacade(t *testing.T) {
	p := openWithData(t)
	defer p.Close()
	g, err := p.Heatmap(context.Background(), CO2, 7200, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 16 || g.Rows != 16 {
		t.Errorf("grid %dx%d", g.Cols, g.Rows)
	}
}

func TestHTTPHandlerServes(t *testing.T) {
	p := openWithData(t)
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/query/point?t=7200&x=1000&y=700")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var pr struct {
		Value float64 `json:"value"`
		Band  string  `json:"band"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Band == "" || math.IsNaN(pr.Value) {
		t.Errorf("response %+v", pr)
	}
}

func TestSimulateLausanneDeterministic(t *testing.T) {
	a, err := SimulateLausanne(5, 3600)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateLausanne(5, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestClassifyCO2Facade(t *testing.T) {
	if ClassifyCO2(450).String() != "fresh" {
		t.Error("ClassifyCO2(450) should be fresh")
	}
	if ClassifyCO2(6000).String() != "hazardous" {
		t.Error("ClassifyCO2(6000) should be hazardous")
	}
}

func TestLausanneProjection(t *testing.T) {
	pr := LausanneProjection()
	pt := pr.ToPoint(LatLon{Lat: 46.5197, Lon: 6.6323})
	if math.Abs(pt.X) > 1 || math.Abs(pt.Y) > 1 {
		t.Errorf("origin projects to %v, want ~(0,0)", pt)
	}
}

func TestDurableReopen(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Config{WindowSeconds: 3600, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	readings, err := SimulateLausanne(2, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(context.Background(), CO2, readings); err != nil {
		t.Fatal(err)
	}
	n := p.Len()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(Config{WindowSeconds: 3600, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Len() != n {
		t.Errorf("recovered %d readings, want %d", p2.Len(), n)
	}
	if _, err := p2.Query(context.Background(), Request{T: 1800, X: 500, Y: 500}); err != nil {
		t.Errorf("query after recovery: %v", err)
	}
}
