// Command envirometer-query is the CLI client of an EnviroMeter server —
// the terminal equivalent of the Android app's point and route queries,
// speaking the v1 pollutant-aware API.
//
// Usage:
//
//	envirometer-query -server http://localhost:8080 point -t 7200 -x 1200 -y 800 [-pollutant co2] [-processor naive -radius 250]
//	envirometer-query -server http://localhost:8080 batch -requests "7200,1200,800,co2 7200,1200,800,pm"
//	envirometer-query -server http://localhost:8080 route -t 7200 -points "0,500 300,550 600,620" [-pollutant co2]
//	envirometer-query -server http://localhost:8080 models -t 7200 [-pollutant co2]
//	envirometer-query -server http://localhost:8080 pollutants
//	envirometer-query -server http://localhost:8080 stats
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "EnviroMeter server base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(*server, args[0], args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-query:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: envirometer-query [-server URL] <command> [args]

commands:
  point  -t T -x X -y Y [-pollutant P] [-processor K] [-radius R]
                                    interpolate one pollutant at one position
  batch  -requests "t,x,y[,pollutant] …" [-processor K] [-radius R] [-concurrency N]
                                    one round trip, many (mixed-pollutant) requests,
                                    answered concurrently with per-request errors
  route  -t T -points "x,y x,y …" [-pollutant P] [-follow]
                                    continuous query along a route (60 s per point);
                                    -follow subscribes instead: the server pushes the
                                    initial vector and then deltas as ingests
                                    invalidate the route's model covers
  models -t T [-pollutant P]        download the model cover valid at T
  pollutants                        list monitored pollutants
  stats                             server statistics`)
}

func run(server, cmd string, args []string) error {
	switch cmd {
	case "point":
		return runPoint(server, args)
	case "batch":
		return runBatch(server, args)
	case "route":
		return runRoute(server, args)
	case "models":
		return runModels(server, args)
	case "pollutants":
		return get(server + "/v1/pollutants")
	case "stats":
		return get(server + "/v1/stats")
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func runPoint(server string, args []string) error {
	fs := flag.NewFlagSet("point", flag.ContinueOnError)
	t := fs.Float64("t", 0, "stream time (seconds)")
	x := fs.Float64("x", 0, "x position (meters)")
	y := fs.Float64("y", 0, "y position (meters)")
	pollutant := fs.String("pollutant", "", "pollutant (co2, co, pm; empty = server default)")
	processor := fs.String("processor", "", "query method (cover, naive, rtree, vptree)")
	radius := fs.Float64("radius", 0, "radius in meters for radius-based processors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	v := url.Values{}
	v.Set("t", formatFloat(*t))
	v.Set("x", formatFloat(*x))
	v.Set("y", formatFloat(*y))
	if *pollutant != "" {
		v.Set("pollutant", *pollutant)
	}
	if *processor != "" {
		v.Set("processor", *processor)
	}
	if *radius > 0 {
		v.Set("radius", formatFloat(*radius))
	}
	return get(server + "/v1/query?" + v.Encode())
}

func runBatch(server string, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	requests := fs.String("requests", "", `requests as "t,x,y[,pollutant] …"`)
	processor := fs.String("processor", "", "query method (cover, naive, rtree, vptree)")
	radius := fs.Float64("radius", 0, "radius in meters for radius-based processors")
	concurrency := fs.Int("concurrency", 0, "server-side worker bound (0 = server default, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests == "" {
		return fmt.Errorf("batch: -requests is required")
	}
	type req struct {
		T         float64 `json:"t"`
		X         float64 `json:"x"`
		Y         float64 `json:"y"`
		Pollutant string  `json:"pollutant,omitempty"`
	}
	var reqs []req
	for _, tok := range strings.Fields(*requests) {
		parts := strings.Split(tok, ",")
		if len(parts) != 3 && len(parts) != 4 {
			return fmt.Errorf("batch: bad request %q (want t,x,y[,pollutant])", tok)
		}
		var vals [3]float64
		for i := 0; i < 3; i++ {
			f, err := strconv.ParseFloat(parts[i], 64)
			if err != nil {
				return fmt.Errorf("batch: request %q: %v", tok, err)
			}
			vals[i] = f
		}
		r := req{T: vals[0], X: vals[1], Y: vals[2]}
		if len(parts) == 4 {
			r.Pollutant = parts[3]
		}
		reqs = append(reqs, r)
	}
	body, err := json.Marshal(map[string]interface{}{"requests": reqs})
	if err != nil {
		return err
	}
	v := url.Values{}
	if *processor != "" {
		v.Set("processor", *processor)
	}
	if *radius > 0 {
		v.Set("radius", formatFloat(*radius))
	}
	if *concurrency > 0 {
		v.Set("concurrency", strconv.Itoa(*concurrency))
	}
	u := server + "/v1/query/batch"
	if len(v) > 0 {
		u += "?" + v.Encode()
	}
	return post(u, body)
}

func runRoute(server string, args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	t := fs.Float64("t", 0, "stream time of the first point (seconds)")
	points := fs.String("points", "", `route points as "x,y x,y …"`)
	interval := fs.Float64("interval", 60, "seconds between consecutive points")
	pollutant := fs.String("pollutant", "", "pollutant (co2, co, pm; empty = server default)")
	follow := fs.Bool("follow", false, "subscribe to server pushes instead of querying once")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *points == "" {
		return fmt.Errorf("route: -points is required")
	}
	type qt struct {
		T float64 `json:"t"`
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}
	var pts []qt
	for i, tok := range strings.Fields(*points) {
		xy := strings.Split(tok, ",")
		if len(xy) != 2 {
			return fmt.Errorf("route: bad point %q", tok)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			return fmt.Errorf("route: point %q: %v", tok, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			return fmt.Errorf("route: point %q: %v", tok, err)
		}
		pts = append(pts, qt{T: *t + float64(i)*(*interval), X: x, Y: y})
	}
	if *follow {
		specs := make([]string, len(pts))
		for i, p := range pts {
			specs[i] = fmt.Sprintf("%s,%s,%s", formatFloat(p.T), formatFloat(p.X), formatFloat(p.Y))
		}
		return followRoute(server, *pollutant, strings.Join(specs, ";"))
	}
	body, err := json.Marshal(map[string]interface{}{"points": pts})
	if err != nil {
		return err
	}
	u := server + "/v1/query/continuous"
	if *pollutant != "" {
		u += "?pollutant=" + url.QueryEscape(*pollutant)
	}
	return post(u, body)
}

func runModels(server string, args []string) error {
	fs := flag.NewFlagSet("models", flag.ContinueOnError)
	t := fs.Float64("t", 0, "stream time (seconds)")
	pollutant := fs.String("pollutant", "", "pollutant (co2, co, pm; empty = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	v := url.Values{}
	v.Set("t", formatFloat(*t))
	if *pollutant != "" {
		v.Set("pollutant", *pollutant)
	}
	return get(server + "/v1/models?" + v.Encode())
}

// followRoute consumes the GET /v1/subscribe SSE stream, printing one
// line per pushed event. On a dropped connection it reconnects with
// Last-Event-ID, so the server resumes the same subscription (sending a
// resync first if pushes were missed) instead of starting over.
func followRoute(server, pollutant, points string) error {
	v := url.Values{}
	v.Set("points", points)
	if pollutant != "" {
		v.Set("pollutant", pollutant)
	}
	u := server + "/v1/subscribe?" + v.Encode()
	lastID := ""
	for attempt := 0; ; attempt++ {
		id, err := followOnce(u, lastID)
		if id != "" {
			lastID, attempt = id, 0 // progress: reset the retry budget
		}
		if err != nil {
			return err
		}
		if attempt >= 5 {
			return fmt.Errorf("follow: no events after %d reconnects; giving up", attempt)
		}
		fmt.Fprintln(os.Stderr, "envirometer-query: stream dropped; reconnecting")
		time.Sleep(time.Second)
	}
}

// followOnce runs one SSE connection until it drops, returning the last
// event ID seen (for resume). A non-nil error is terminal (the server
// rejected the subscription); a nil error asks the caller to reconnect.
func followOnce(u, lastID string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return lastID, err
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return lastID, nil // transient: reconnect
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return lastID, fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" {
				fmt.Printf("%s\t%s\n", event, data)
			}
			event, data = "", ""
		case strings.HasPrefix(line, "id: "):
			lastID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	return lastID, nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func get(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

func post(u string, body []byte) error {
	resp, err := http.Post(u, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

// dump pretty-prints a JSON response to stdout.
func dump(resp *http.Response) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var v interface{}
	if err := json.Unmarshal(data, &v); err != nil {
		// Not JSON; print raw.
		fmt.Println(string(data))
		return nil
	}
	pretty, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(pretty))
	return nil
}
