// Command envirometer-query is the CLI client of an EnviroMeter server —
// the terminal equivalent of the Android app's point and route queries.
//
// Usage:
//
//	envirometer-query -server http://localhost:8080 point -t 7200 -x 1200 -y 800
//	envirometer-query -server http://localhost:8080 route -t 7200 -points "0,500 300,550 600,620"
//	envirometer-query -server http://localhost:8080 models -t 7200
//	envirometer-query -server http://localhost:8080 stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "EnviroMeter server base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(*server, args[0], args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-query:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: envirometer-query [-server URL] <command> [args]

commands:
  point  -t T -x X -y Y            interpolate the pollutant value at one position
  route  -t T -points "x,y x,y …"  continuous query along a route (60 s per point)
  models -t T                       download the model cover valid at T
  stats                             server statistics`)
}

func run(server, cmd string, args []string) error {
	switch cmd {
	case "point":
		return runPoint(server, args)
	case "route":
		return runRoute(server, args)
	case "models":
		return runModels(server, args)
	case "stats":
		return get(server + "/v1/stats")
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func runPoint(server string, args []string) error {
	fs := flag.NewFlagSet("point", flag.ContinueOnError)
	t := fs.Float64("t", 0, "stream time (seconds)")
	x := fs.Float64("x", 0, "x position (meters)")
	y := fs.Float64("y", 0, "y position (meters)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u := fmt.Sprintf("%s/v1/query/point?t=%v&x=%v&y=%v", server, *t, *x, *y)
	return get(u)
}

func runRoute(server string, args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	t := fs.Float64("t", 0, "stream time of the first point (seconds)")
	points := fs.String("points", "", `route points as "x,y x,y …"`)
	interval := fs.Float64("interval", 60, "seconds between consecutive points")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *points == "" {
		return fmt.Errorf("route: -points is required")
	}
	type qt struct {
		T float64 `json:"t"`
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}
	var pts []qt
	for i, tok := range strings.Fields(*points) {
		xy := strings.Split(tok, ",")
		if len(xy) != 2 {
			return fmt.Errorf("route: bad point %q", tok)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			return fmt.Errorf("route: point %q: %v", tok, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			return fmt.Errorf("route: point %q: %v", tok, err)
		}
		pts = append(pts, qt{T: *t + float64(i)*(*interval), X: x, Y: y})
	}
	body, err := json.Marshal(map[string]interface{}{"points": pts})
	if err != nil {
		return err
	}
	resp, err := http.Post(server+"/v1/query/continuous", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

func runModels(server string, args []string) error {
	fs := flag.NewFlagSet("models", flag.ContinueOnError)
	t := fs.Float64("t", 0, "stream time (seconds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return get(server + "/v1/models?t=" + url.QueryEscape(strconv.FormatFloat(*t, 'g', -1, 64)))
}

func get(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

// dump pretty-prints a JSON response to stdout.
func dump(resp *http.Response) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var v interface{}
	if err := json.Unmarshal(data, &v); err != nil {
		// Not JSON; print raw.
		fmt.Println(string(data))
		return nil
	}
	pretty, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(pretty))
	return nil
}
