// Command envirometer-bench regenerates the paper's evaluation (§4): every
// figure plus the ablation studies from DESIGN.md.
//
// Usage:
//
//	envirometer-bench [-fig 6a|6b|7a|7b|ablations|all] [-days N] [-queries N] [-seed N]
//
// By default it generates the full one-month synthetic lausanne-data
// equivalent (172,800 scheduled samples) and runs everything; -days trims
// the deployment for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which experiment: 6a, 6b, 7a, 7b, ablations, all")
		days    = flag.Float64("days", 30, "deployment duration to simulate, in days")
		queries = flag.Int("queries", 5000, "point queries per window size (Figure 6)")
		seed    = flag.Int64("seed", 1, "deterministic seed for data, workloads, clustering")
	)
	flag.Parse()
	if err := run(*fig, *days, *queries, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-bench:", err)
		os.Exit(1)
	}
}

func run(fig string, days float64, queries int, seed int64) error {
	fmt.Printf("# generating synthetic lausanne-data: %.1f days, seed %d\n", days, seed)
	d, err := bench.LoadDataset(seed, days*86400)
	if err != nil {
		return err
	}
	fmt.Printf("# dataset: %d raw tuples\n\n", len(d.Data))

	needFig6 := fig == "6a" || fig == "6b" || fig == "all"
	var fig6 []bench.Fig6Row
	if needFig6 {
		cfg := bench.DefaultFig6Config()
		cfg.NumQueries = queries
		cfg.Seed = seed
		fig6, err = bench.RunFig6(d, cfg)
		if err != nil {
			return fmt.Errorf("figure 6: %w", err)
		}
	}
	switch fig {
	case "6a":
		bench.PrintFig6a(os.Stdout, fig6)
	case "6b":
		bench.PrintFig6b(os.Stdout, fig6)
	case "7a":
		return runFig7a(d, seed)
	case "7b":
		return runFig7b(d, seed)
	case "ablations":
		return runAblations(d, queries, seed)
	case "all":
		bench.PrintFig6a(os.Stdout, fig6)
		fmt.Println()
		bench.PrintFig6b(os.Stdout, fig6)
		fmt.Println()
		if err := runFig7a(d, seed); err != nil {
			return err
		}
		fmt.Println()
		if err := runFig7b(d, seed); err != nil {
			return err
		}
		fmt.Println()
		return runAblations(d, queries, seed)
	default:
		return fmt.Errorf("unknown -fig %q (want 6a, 6b, 7a, 7b, ablations, all)", fig)
	}
	return nil
}

func runFig7a(d *bench.Dataset, seed int64) error {
	cfg := bench.DefaultFig7aConfig()
	cfg.Seed = seed
	res, err := bench.RunFig7a(d, cfg)
	if err != nil {
		return fmt.Errorf("figure 7a: %w", err)
	}
	bench.PrintFig7a(os.Stdout, res)
	return nil
}

func runFig7b(d *bench.Dataset, seed int64) error {
	cfg := bench.DefaultFig7bConfig()
	cfg.Seed = seed
	res, err := bench.RunFig7b(d, cfg)
	if err != nil {
		return fmt.Errorf("figure 7b: %w", err)
	}
	bench.PrintFig7b(os.Stdout, res)
	return nil
}

func runAblations(d *bench.Dataset, queries int, seed int64) error {
	covers, err := bench.RunAblationCovers(d, 2000, queries, seed)
	if err != nil {
		return fmt.Errorf("ablation covers: %w", err)
	}
	bench.PrintAblationCovers(os.Stdout, covers)
	fmt.Println()

	families, err := bench.RunAblationModelFamily(d, 2000, queries, seed)
	if err != nil {
		return fmt.Errorf("ablation model family: %w", err)
	}
	bench.PrintAblationModelFamily(os.Stdout, families)
	fmt.Println()

	codecs, err := bench.RunAblationCodec(d, 2000, seed)
	if err != nil {
		return fmt.Errorf("ablation codec: %w", err)
	}
	bench.PrintAblationCodec(os.Stdout, codecs)
	fmt.Println()

	idx, err := bench.RunAblationIndexTuning(d, 5000, queries, 1000, seed)
	if err != nil {
		return fmt.Errorf("ablation index tuning: %w", err)
	}
	bench.PrintAblationIndexTuning(os.Stdout, idx)
	return nil
}
