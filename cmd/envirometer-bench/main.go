// Command envirometer-bench regenerates the paper's evaluation (§4): every
// figure plus the ablation studies from DESIGN.md, and the PR-6
// subscription-vs-polling experiment.
//
// Usage:
//
//	envirometer-bench [-fig 6a|6b|7a|7b|ablations|subs|colscan|failover|rebalance|all]
//	                  [-days N] [-queries N] [-seed N]
//	                  [-subscribers N] [-rounds N] [-out FILE]
//
// By default it generates the full one-month synthetic lausanne-data
// equivalent (172,800 scheduled samples) and runs everything; -days trims
// the deployment for quick runs. -fig subs runs the closed-loop push
// benchmark and, with -out, writes its JSON result (BENCH_6.json) after
// re-parsing and sanity-checking the file. -fig failover runs the
// replica-failover / hedged-read benchmark (BENCH_9.json) the same way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "which experiment: 6a, 6b, 7a, 7b, ablations, subs, colscan, failover, rebalance, all")
		days        = flag.Float64("days", 30, "deployment duration to simulate, in days")
		queries     = flag.Int("queries", 5000, "point queries per window size (Figure 6)")
		seed        = flag.Int64("seed", 1, "deterministic seed for data, workloads, clustering")
		subscribers = flag.Int("subscribers", 0, "subscription bench: subscriber count (0 = default)")
		rounds      = flag.Int("rounds", 0, "subscription bench: ingest rounds (0 = default)")
		windows     = flag.Int("windows", 0, "columnar bench: checkpointed windows (0 = default 200)")
		minspeedup  = flag.Float64("minspeedup", 3, "columnar bench: minimum accepted cover/heatmap speedup")
		out         = flag.String("out", "", "subs/colscan bench: write the JSON result to this file")
	)
	flag.Parse()
	if *fig == "subs" {
		if err := runSubs(*subscribers, *rounds, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "envirometer-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "colscan" {
		if err := runColscan(*windows, *seed, *minspeedup, *out); err != nil {
			fmt.Fprintln(os.Stderr, "envirometer-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "rebalance" {
		queriesSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "queries" {
				queriesSet = true
			}
		})
		q := 0
		if queriesSet {
			q = *queries
		}
		if err := runRebalance(q, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "envirometer-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "failover" {
		queriesSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "queries" {
				queriesSet = true
			}
		})
		q := 0
		if queriesSet {
			q = *queries
		}
		if err := runFailover(q, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "envirometer-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *days, *queries, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-bench:", err)
		os.Exit(1)
	}
}

// runSubs drives the closed-loop subscription benchmark and optionally
// persists BENCH_6.json, verifying the written file parses back and
// shows the push path actually transferring less than polling.
func runSubs(subscribers, rounds int, seed int64, out string) error {
	cfg := bench.DefaultSubsConfig()
	cfg.Seed = seed
	if subscribers > 0 {
		cfg.Subscribers = subscribers
	}
	if rounds > 0 {
		cfg.Rounds = rounds
	}
	res, err := bench.RunSubs(cfg)
	if err != nil {
		return err
	}
	bench.PrintSubs(os.Stdout, res)
	if out == "" {
		return nil
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		return err
	}
	var check bench.SubsResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return fmt.Errorf("%s does not parse back: %w", out, err)
	}
	if check.PushedBytes <= 0 || check.PolledBytes <= 0 {
		return fmt.Errorf("%s records no traffic (pushed %d, polled %d)", out, check.PushedBytes, check.PolledBytes)
	}
	if check.PushedBytes >= check.PolledBytes {
		return fmt.Errorf("%s: pushed bytes %d not below polled bytes %d", out, check.PushedBytes, check.PolledBytes)
	}
	fmt.Printf("\nwrote %s (%d bytes, parses back OK)\n", out, len(raw))
	return nil
}

// runColscan drives the columnar-vs-row-replay benchmark and optionally
// persists BENCH_8.json, verifying the written file parses back, that
// both paths answered identically, and that the columnar path cleared
// the configured speedup floor on the cold cover-build and heatmap
// workloads.
func runColscan(windows int, seed int64, minSpeedup float64, out string) error {
	cfg := bench.DefaultColscanConfig()
	cfg.Seed = seed
	if windows > 0 {
		cfg.Windows = windows
	}
	scratch, err := os.MkdirTemp("", "colscan-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	res, err := bench.RunColscan(cfg, scratch)
	if err != nil {
		return err
	}
	bench.PrintColscan(os.Stdout, res)
	if !res.Equivalent {
		return fmt.Errorf("columnar and row scan paths returned different answers")
	}
	if res.CoverSpeedup < minSpeedup || res.HeatmapSpeedup < minSpeedup {
		return fmt.Errorf("speedup below floor %.1fx: cover %.2fx, heatmap %.2fx",
			minSpeedup, res.CoverSpeedup, res.HeatmapSpeedup)
	}
	if out == "" {
		return nil
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		return err
	}
	var check bench.ColscanResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return fmt.Errorf("%s does not parse back: %w", out, err)
	}
	if !check.Equivalent || check.CoverSpeedup < minSpeedup || check.HeatmapSpeedup < minSpeedup {
		return fmt.Errorf("%s records a failing run (equivalent %v, cover %.2fx, heatmap %.2fx)",
			out, check.Equivalent, check.CoverSpeedup, check.HeatmapSpeedup)
	}
	if check.BlocksScanned <= 0 || check.ColBytesRead <= 0 {
		return fmt.Errorf("%s records no columnar reads (%d blocks, %d bytes)",
			out, check.BlocksScanned, check.ColBytesRead)
	}
	fmt.Printf("\nwrote %s (%d bytes, parses back OK)\n", out, len(raw))
	return nil
}

// runFailover drives the replica-failover / hedged-read benchmark and
// optionally persists BENCH_9.json, verifying the written file parses
// back and records a passing run: zero failed queries and byte-equal
// replica answers after killing a node, and a hedged p99 no worse than
// the unhedged one against a slow primary.
func runFailover(queries int, seed int64, out string) error {
	cfg := bench.DefaultFailoverConfig()
	cfg.Seed = seed
	if queries > 0 {
		cfg.Queries = queries
	}
	res, err := bench.RunFailover(cfg)
	if err != nil {
		return err
	}
	bench.PrintFailover(os.Stdout, res)
	if !res.ZeroErrorFailover {
		return fmt.Errorf("failover was not error-free: %d/%d queries failed, %d ingest failures, %d failovers",
			res.FailedAfterKill, res.QueriesAfterKill, res.IngestFailures, res.ClientFailovers)
	}
	if !res.ByteEqualReplicas {
		return fmt.Errorf("%d replica answers diverged from the dead owner's", res.Mismatches)
	}
	if !res.HedgeP99Improved {
		return fmt.Errorf("hedging did not hold p99: hedged %.3fms vs unhedged %.3fms (%d wins)",
			res.HedgedP99Ms, res.UnhedgedP99Ms, res.HedgeWins)
	}
	if out == "" {
		return nil
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		return err
	}
	var check bench.FailoverResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return fmt.Errorf("%s does not parse back: %w", out, err)
	}
	if !check.ZeroErrorFailover || !check.ByteEqualReplicas || !check.HedgeP99Improved {
		return fmt.Errorf("%s records a failing run (zero-error %v, byte-equal %v, hedge %v)",
			out, check.ZeroErrorFailover, check.ByteEqualReplicas, check.HedgeP99Improved)
	}
	if check.VictimShardQueries <= 0 || check.HedgeWins <= 0 {
		return fmt.Errorf("%s records no victim-shard reads (%d) or hedge wins (%d)",
			out, check.VictimShardQueries, check.HedgeWins)
	}
	fmt.Printf("\nwrote %s (%d bytes, parses back OK)\n", out, len(raw))
	return nil
}

// runRebalance drives the live-join rebalance benchmark and optionally
// persists BENCH_10.json, verifying the written file parses back and
// records a passing run: zero query errors while the fourth node
// joined, the membership epoch advanced exactly once on every member,
// the joiner owns shards, and every sampled answer after the rebalance
// is byte-equal to the answer before it.
func runRebalance(queries int, seed int64, out string) error {
	cfg := bench.DefaultRebalanceConfig()
	cfg.Seed = seed
	if queries > 0 {
		cfg.Queries = queries
	}
	res, err := bench.RunRebalance(cfg)
	if err != nil {
		return err
	}
	bench.PrintRebalance(os.Stdout, res)
	if !res.ZeroErrorJoin {
		return fmt.Errorf("join was not error-free: %d/%d queries failed during the join window",
			res.JoinErrors, res.JoinQueries)
	}
	if !res.EpochAdvancedOnce {
		return fmt.Errorf("epoch did not advance exactly once everywhere (%d -> %d)",
			res.EpochBefore, res.EpochAfter)
	}
	if !res.JoinerOwnsShards {
		return fmt.Errorf("joiner owns no shards after the commit")
	}
	if !res.AnswersPreserved {
		return fmt.Errorf("%d answers changed across the rebalance", res.PostMismatches)
	}
	if out == "" {
		return nil
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		return err
	}
	var check bench.RebalanceResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return fmt.Errorf("%s does not parse back: %w", out, err)
	}
	if !check.ZeroErrorJoin || !check.EpochAdvancedOnce || !check.JoinerOwnsShards || !check.AnswersPreserved {
		return fmt.Errorf("%s records a failing run (zero-error %v, epoch %v, shards %v, answers %v)",
			out, check.ZeroErrorJoin, check.EpochAdvancedOnce, check.JoinerOwnsShards, check.AnswersPreserved)
	}
	if check.JoinQueries <= 0 || check.JoinP99Ms <= 0 {
		return fmt.Errorf("%s records no join-window latency sample (%d queries, p99 %.3fms)",
			out, check.JoinQueries, check.JoinP99Ms)
	}
	fmt.Printf("\nwrote %s (%d bytes, parses back OK)\n", out, len(raw))
	return nil
}

func run(fig string, days float64, queries int, seed int64) error {
	fmt.Printf("# generating synthetic lausanne-data: %.1f days, seed %d\n", days, seed)
	d, err := bench.LoadDataset(seed, days*86400)
	if err != nil {
		return err
	}
	fmt.Printf("# dataset: %d raw tuples\n\n", len(d.Data))

	needFig6 := fig == "6a" || fig == "6b" || fig == "all"
	var fig6 []bench.Fig6Row
	if needFig6 {
		cfg := bench.DefaultFig6Config()
		cfg.NumQueries = queries
		cfg.Seed = seed
		fig6, err = bench.RunFig6(d, cfg)
		if err != nil {
			return fmt.Errorf("figure 6: %w", err)
		}
	}
	switch fig {
	case "6a":
		bench.PrintFig6a(os.Stdout, fig6)
	case "6b":
		bench.PrintFig6b(os.Stdout, fig6)
	case "7a":
		return runFig7a(d, seed)
	case "7b":
		return runFig7b(d, seed)
	case "ablations":
		return runAblations(d, queries, seed)
	case "all":
		bench.PrintFig6a(os.Stdout, fig6)
		fmt.Println()
		bench.PrintFig6b(os.Stdout, fig6)
		fmt.Println()
		if err := runFig7a(d, seed); err != nil {
			return err
		}
		fmt.Println()
		if err := runFig7b(d, seed); err != nil {
			return err
		}
		fmt.Println()
		return runAblations(d, queries, seed)
	default:
		return fmt.Errorf("unknown -fig %q (want 6a, 6b, 7a, 7b, ablations, subs, colscan, failover, rebalance, all)", fig)
	}
	return nil
}

func runFig7a(d *bench.Dataset, seed int64) error {
	cfg := bench.DefaultFig7aConfig()
	cfg.Seed = seed
	res, err := bench.RunFig7a(d, cfg)
	if err != nil {
		return fmt.Errorf("figure 7a: %w", err)
	}
	bench.PrintFig7a(os.Stdout, res)
	return nil
}

func runFig7b(d *bench.Dataset, seed int64) error {
	cfg := bench.DefaultFig7bConfig()
	cfg.Seed = seed
	res, err := bench.RunFig7b(d, cfg)
	if err != nil {
		return fmt.Errorf("figure 7b: %w", err)
	}
	bench.PrintFig7b(os.Stdout, res)
	return nil
}

func runAblations(d *bench.Dataset, queries int, seed int64) error {
	covers, err := bench.RunAblationCovers(d, 2000, queries, seed)
	if err != nil {
		return fmt.Errorf("ablation covers: %w", err)
	}
	bench.PrintAblationCovers(os.Stdout, covers)
	fmt.Println()

	families, err := bench.RunAblationModelFamily(d, 2000, queries, seed)
	if err != nil {
		return fmt.Errorf("ablation model family: %w", err)
	}
	bench.PrintAblationModelFamily(os.Stdout, families)
	fmt.Println()

	codecs, err := bench.RunAblationCodec(d, 2000, seed)
	if err != nil {
		return fmt.Errorf("ablation codec: %w", err)
	}
	bench.PrintAblationCodec(os.Stdout, codecs)
	fmt.Println()

	idx, err := bench.RunAblationIndexTuning(d, 5000, queries, 1000, seed)
	if err != nil {
		return fmt.Errorf("ablation index tuning: %w", err)
	}
	bench.PrintAblationIndexTuning(os.Stdout, idx)
	return nil
}
