// Command envirometer-server runs the EnviroMeter platform server: it
// loads (or simulates) a community-sensed dataset for one or more
// pollutants and serves both the web/JSON API — point, batch, and
// continuous queries, model-cover downloads, heatmaps — and, optionally,
// the binary TCP wire protocol that smartphone model-cache clients use.
//
// Usage:
//
//	envirometer-server [-addr :8080] [-tcp :8081] [-window 14400]
//	                   [-pollutants CO2,CO,PM] [-days 2] [-data file.csv]
//	                   [-dir segments/] [-covers covers.emcv] [-live]
//	                   [-speedup 3600] [-seed 1]
//	                   [-sync every|grouped|never] [-sync-batches 32]
//	                   [-sync-delay 2ms] [-ingest-queue 64]
//	                   [-ingest-maxbatch 4096] [-sched-workers 2]
//	                   [-sched-queue 128] [-checkpoint-interval 5m]
//	                   [-checkpoint-keep 1]
//	                   [-cluster-nodes host:8081,host:8082] [-node-id 0]
//	                   [-router] [-cluster-cells 16] [-cluster-vnodes 64]
//	                   [-replicas 2] [-join host:8081] [-advertise host:8084]
//
// The -sync* flags pick the durability policy of -dir (grouped = group
// commit: one fsync covers up to -sync-batches appends or -sync-delay of
// accumulation). The -ingest-* flags bound the asynchronous ingest
// queues; -sched-* tunes the background cover-maintenance scheduler
// (-sched-workers -1 disables it, putting cover builds back on the
// query path). With -checkpoint-interval, each pollutant's store
// periodically (and at shutdown) checkpoints its retained windows and
// deletes the segment files behind the checkpoint, keeping disk usage
// and restart time bounded by retention instead of history;
// -checkpoint-keep spares the newest N covered segments per compaction.
//
// The -cluster-* flags shard the deployment across several server
// processes: -cluster-nodes lists every node's TCP wire address (the
// same list, in the same order, on every node), -node-id names this
// process's index in it, and -router starts a dedicated query router
// that owns no shards. Cluster mode requires -tcp (peers connect to
// it). Each node bulk-loads only the tuples its shards own; uploads
// and queries sent to any node are routed to the owners, and heatmaps
// scatter-gather across all of them. See docs/OPERATIONS.md for a
// 3-node walkthrough.
//
// A running cluster grows and shrinks live: -join host:port starts this
// process as a new member of the cluster that host:port belongs to —
// it bootstraps the shards it gains from their current owners, then
// commits the next membership epoch (no dataset flags needed; its data
// arrives over the wire). -advertise overrides the address peers dial
// (default: -tcp). On a clustered node SIGTERM drains before exiting:
// peers pull this node's shards and the membership commits without it.
// See docs/OPERATIONS.md "Growing and shrinking the cluster".
//
// With -data, raw tuples are loaded from a CSV file ("t,x,y,s" header);
// since the CSV carries one pollutant, -data requires a single-entry
// -pollutants. Otherwise a synthetic Lausanne deployment of -days days
// is generated for every pollutant of -pollutants. With -dir,
// ingestion is durable and previous segments are recovered. With -covers,
// built model covers are snapshotted for warm restarts. With -live, data
// is streamed in via the ingestion service at -speedup× real time instead
// of being bulk-loaded, so covers appear as windows fill — the demo-floor
// mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/ingest"
	"repro/internal/tuple"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		tcp     = flag.String("tcp", "", "TCP wire-protocol listen address (empty = disabled)")
		window  = flag.Float64("window", 4*3600, "modeling window length H in seconds")
		polls   = flag.String("pollutants", "CO2", "comma-separated pollutants to monitor (CO2,CO,PM)")
		days    = flag.Float64("days", 2, "days of synthetic data when -data is unset")
		data    = flag.String("data", "", "CSV file of raw tuples to load instead of simulating")
		dir     = flag.String("dir", "", "directory for durable segment files (empty = memory only)")
		covers  = flag.String("covers", "", "model-cover snapshot file for warm restarts")
		live    = flag.Bool("live", false, "stream data in via the ingestion service instead of bulk loading")
		speedup = flag.Float64("speedup", 3600, "stream seconds per wall second in -live mode")
		seed    = flag.Int64("seed", 1, "simulation seed")

		syncMode    = flag.String("sync", "every", "durability sync policy: every, grouped, never")
		syncBatches = flag.Int("sync-batches", 0, "grouped sync: max appends per commit group (0 = default)")
		syncDelay   = flag.Duration("sync-delay", 0, "grouped sync: max commit-group age (0 = default)")
		queueDepth  = flag.Int("ingest-queue", 0, "ingest queue depth per pollutant (0 = default)")
		maxBatch    = flag.Int("ingest-maxbatch", 0, "max tuples per coalesced ingest append (0 = default)")
		schedWork   = flag.Int("sched-workers", 0, "background cover-build workers (0 = default, -1 = disabled)")
		schedQueue  = flag.Int("sched-queue", 0, "background cover-build queue bound (0 = default)")
		ckInterval  = flag.Duration("checkpoint-interval", 0, "periodic store checkpoint interval (0 = disabled)")
		ckKeep      = flag.Int("checkpoint-keep", 0, "checkpoint-covered segments spared per compaction")
		columnar    = flag.Bool("columnar", false, "emit columnar sidecar blocks at checkpoint time and recover lazily from them")
		colNoMmap   = flag.Bool("columnar-no-mmap", false, "force the columnar reader onto pread instead of mmap")
		subQueue    = flag.Int("sub-queue", 0, "per-subscription push-queue depth; a slow consumer overflowing it gets a resync (0 = default 16)")
		subMax      = flag.Int("sub-max", 0, "max concurrent push subscriptions (0 = default 1024)")
		subPoints   = flag.Int("sub-points", 0, "max route points per subscription (0 = default 2048)")

		clusterNodes  = flag.String("cluster-nodes", "", "comma-separated TCP wire addresses of every cluster node (empty = single node)")
		nodeID        = flag.Int("node-id", 0, "this process's index in -cluster-nodes")
		router        = flag.Bool("router", false, "run as a dedicated query router owning no shards")
		clusterCells  = flag.Int("cluster-cells", 0, "geo cells partitioning the region (0 = default 16)")
		clusterVNodes = flag.Int("cluster-vnodes", 0, "consistent-hash virtual nodes per node (0 = default 64)")
		replicas      = flag.Int("replicas", 0, "replication factor R: each shard lives on its owner plus R-1 ring successors, which answer its reads when the owner dies (0 or 1 = unreplicated)")
		join          = flag.String("join", "", "wire address of a live member of an existing cluster to join (instead of -cluster-nodes); shards rebalance onto this node before the membership epoch commits")
		advertise     = flag.String("advertise", "", "this node's wire address exactly as peers should dial it (default: -tcp)")
	)
	flag.Parse()
	sync, err := parseSyncPolicy(*syncMode, *syncBatches, *syncDelay)
	if err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-server:", err)
		os.Exit(2)
	}
	var cl repro.ClusterConfig
	switch {
	case *join != "":
		if *clusterNodes != "" || *router {
			fmt.Fprintln(os.Stderr, "envirometer-server: -join replaces -cluster-nodes (the ring comes from the seed) and cannot combine with -router")
			os.Exit(2)
		}
		if *tcp == "" {
			fmt.Fprintln(os.Stderr, "envirometer-server: -join requires -tcp (peers connect to it)")
			os.Exit(2)
		}
		adv := *advertise
		if adv == "" {
			adv = *tcp
		}
		cl = repro.ClusterConfig{Join: *join, Advertise: adv}
	case *clusterNodes != "":
		if *tcp == "" && !*router {
			fmt.Fprintln(os.Stderr, "envirometer-server: cluster mode requires -tcp (peers connect to it)")
			os.Exit(2)
		}
		cl = repro.ClusterConfig{
			Nodes:    strings.Split(*clusterNodes, ","),
			NodeID:   *nodeID,
			Router:   *router,
			Cells:    *clusterCells,
			VNodes:   *clusterVNodes,
			Seed:     *seed,
			Replicas: *replicas,
		}
	case *replicas > 1:
		fmt.Fprintln(os.Stderr, "envirometer-server: -replicas requires -cluster-nodes")
		os.Exit(2)
	case *router:
		fmt.Fprintln(os.Stderr, "envirometer-server: -router requires -cluster-nodes")
		os.Exit(2)
	}
	if err := run(options{
		addr: *addr, tcp: *tcp, window: *window, polls: *polls, days: *days,
		data: *data, dir: *dir, covers: *covers,
		live: *live, speedup: *speedup, seed: *seed,
		sync:    sync,
		queue:   repro.PipelineConfig{QueueDepth: *queueDepth, MaxBatchTuples: *maxBatch},
		sched:   repro.SchedulerConfig{Workers: *schedWork, MaxQueue: *schedQueue},
		ck:      repro.CheckpointConfig{Interval: *ckInterval, KeepSegments: *ckKeep},
		col:     repro.ColumnarConfig{Enabled: *columnar, DisableMmap: *colNoMmap},
		subs:    repro.SubscriptionConfig{QueueDepth: *subQueue, MaxSubs: *subMax, MaxPoints: *subPoints},
		cluster: cl,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-server:", err)
		os.Exit(1)
	}
}

// parseSyncPolicy maps the -sync* flags onto a facade SyncPolicy.
func parseSyncPolicy(mode string, batches int, delay time.Duration) (repro.SyncPolicy, error) {
	switch mode {
	case "every", "":
		return repro.SyncEveryBatch(), nil
	case "grouped":
		return repro.SyncGrouped(batches, delay), nil
	case "never":
		return repro.SyncNever(), nil
	default:
		return repro.SyncPolicy{}, fmt.Errorf("unknown -sync mode %q (want every, grouped, or never)", mode)
	}
}

type options struct {
	addr, tcp, data, dir, covers, polls string
	window, days, speedup               float64
	seed                                int64
	live                                bool
	sync                                repro.SyncPolicy
	queue                               repro.PipelineConfig
	sched                               repro.SchedulerConfig
	ck                                  repro.CheckpointConfig
	col                                 repro.ColumnarConfig
	subs                                repro.SubscriptionConfig
	cluster                             repro.ClusterConfig
}

func run(o options) error {
	pollutants, err := tuple.ParsePollutantList(o.polls)
	if err != nil {
		return err
	}
	p, err := repro.Open(repro.Config{
		WindowSeconds: o.window,
		Pollutants:    pollutants,
		Dir:           o.dir,
		Sync:          o.sync,
		IngestQueue:   o.queue,
		Maintenance:   o.sched,
		Checkpoint:    o.ck,
		Columnar:      o.col,
		Subscriptions: o.subs,
		CoverSnapshot: o.covers,
		Cluster:       o.cluster,
	})
	if err != nil {
		return err
	}
	defer p.Close()

	ctx := context.Background()
	datasets := map[repro.Pollutant][]repro.Reading{}
	if !o.cluster.Router && o.cluster.Join == "" {
		// A dedicated router holds no shards and loads nothing. A joining
		// node loads nothing either: its shards arrive over the wire from
		// their current owners when the join completes below.
		if datasets, err = loadReadings(o, pollutants); err != nil {
			return err
		}
		if p.Clustered() {
			// Every cluster node simulates/loads the same dataset; keep
			// only the tuples this node's shards own so the cluster holds
			// exactly one copy of each.
			for pol, readings := range datasets {
				owned := readings[:0]
				for _, r := range readings {
					if p.Owns(pol, r.X, r.Y) {
						owned = append(owned, r)
					}
				}
				datasets[pol] = owned
				fmt.Printf("cluster node %d owns %d of the %s tuples\n",
					o.cluster.NodeID, len(owned), pol)
			}
		}
	}

	if o.live {
		for pol, readings := range datasets {
			go runLive(p, pol, readings, o.speedup)
			fmt.Printf("live mode: streaming %d %s tuples at %.0fx real time\n",
				len(readings), pol, o.speedup)
		}
	} else {
		for pol, readings := range datasets {
			if err := p.Ingest(ctx, pol, readings); err != nil {
				return err
			}
			fmt.Printf("bulk loaded %d %s raw tuples\n", len(readings), pol)
		}
	}

	if o.tcp != "" {
		srv, tcpAddr, err := p.ListenTCP(o.tcp)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving binary wire protocol on %s\n", tcpAddr)
	}
	if o.cluster.Join != "" {
		// The wire listener is up, so peers can dial this node the moment
		// the commit broadcast lands: bootstrap the gained shards and
		// commit the next membership epoch.
		if err := p.CompleteJoin(ctx); err != nil {
			return err
		}
		fmt.Printf("joined cluster via %s at epoch %d\n", o.cluster.Join, p.ClusterEpoch())
	}

	fmt.Printf("serving EnviroMeter v1 API on %s (window H = %.0f s, pollutants %v)\n",
		o.addr, o.window, pollutants)
	fmt.Println("  GET  /v1/query?t=&x=&y=&pollutant=co2[&processor=naive&radius=250]")
	fmt.Println("  POST /v1/query/batch")
	fmt.Println("  POST /v1/query/continuous?pollutant=")
	fmt.Println("  GET  /v1/models?t=&pollutant=")
	fmt.Println("  GET  /v1/heatmap?t=&cols=&rows=&pollutant=   (and /v1/heatmap.png)")
	fmt.Println("  POST /v1/ingest")
	fmt.Println("  GET  /v1/stats")
	fmt.Println("  GET  /v1/pollutants")
	if p.Clustered() {
		fmt.Println("  GET  /v1/cluster")
		fmt.Println("  POST /v1/cluster/join  /v1/cluster/drain")
	}
	return serve(p, o.addr)
}

// serve runs the HTTP API until SIGINT/SIGTERM. On a clustered node,
// SIGTERM first drains: peers pull this node's shards and the
// membership commits without it, so a rolling shutdown loses no acked
// tuples. SIGINT (and a second SIGTERM) skips the drain and stops hard
// — replicas cover the shards until a promotion.
func serve(p *repro.Platform, addr string) error {
	srv := &http.Server{Addr: addr, Handler: p.Handler()}
	sigs := make(chan os.Signal, 2) //bounded: two pending signals at most matter (first drains, second aborts)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1) //bounded: one terminal server error
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case sig := <-sigs:
		if sig == syscall.SIGTERM && p.Clustered() {
			fmt.Println("SIGTERM: draining shards to peers before shutdown (SIGINT aborts)")
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			go func() { <-sigs; cancel() }()
			if err := p.Drain(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "envirometer-server: drain failed (shutting down anyway):", err)
			} else {
				fmt.Printf("drained: cluster committed epoch %d without this node\n", p.ClusterEpoch())
			}
			cancel()
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}

func loadReadings(o options, pollutants []repro.Pollutant) (map[repro.Pollutant][]repro.Reading, error) {
	if o.data != "" {
		if len(pollutants) != 1 {
			return nil, fmt.Errorf("-data loads a single-pollutant CSV; got %d pollutants", len(pollutants))
		}
		f, err := os.Open(o.data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		b, err := tuple.ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", o.data, err)
		}
		fmt.Printf("loaded %d raw tuples from %s\n", len(b), o.data)
		return map[repro.Pollutant][]repro.Reading{pollutants[0]: b}, nil
	}
	data, err := repro.SimulateLausanneMulti(o.seed, o.days*86400, pollutants)
	if err != nil {
		return nil, err
	}
	for pol, readings := range data {
		fmt.Printf("simulated %d %s raw tuples (%.1f days, seed %d)\n",
			len(readings), pol, o.days, o.seed)
	}
	return data, nil
}

// runLive pumps one pollutant's readings through the ingestion service at
// the configured speedup; ingestion errors terminate the stream but not
// the server.
func runLive(p *repro.Platform, pol repro.Pollutant, readings []repro.Reading, speedup float64) {
	replayer, err := ingest.NewReplayer(tuple.Batch(readings), 60)
	if err != nil {
		fmt.Fprintln(os.Stderr, "live ingest:", err)
		return
	}
	svc, err := ingest.NewService(replayer, platformSink{p: p, pol: pol}, ingest.Config{Speedup: speedup})
	if err != nil {
		fmt.Fprintln(os.Stderr, "live ingest:", err)
		return
	}
	if err := svc.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "live ingest stopped:", err)
		return
	}
	st := svc.Stats()
	fmt.Printf("live %s ingest complete: %d tuples in %d batches (%d rejected)\n",
		pol, st.Tuples, st.Batches, st.Rejected)
}

// platformSink adapts the public facade to the ingest.Sink interface,
// binding the pollutant the stream feeds.
type platformSink struct {
	p   *repro.Platform
	pol repro.Pollutant
}

func (s platformSink) Ingest(b tuple.Batch) error {
	return s.p.Ingest(context.Background(), s.pol, []repro.Reading(b))
}
