// Command envirometer-server runs the EnviroMeter platform server: it
// loads (or simulates) a community-sensed dataset and serves both the
// web/JSON API — point queries, continuous route queries, model-cover
// downloads, heatmaps — and, optionally, the binary TCP wire protocol
// that smartphone model-cache clients use.
//
// Usage:
//
//	envirometer-server [-addr :8080] [-tcp :8081] [-window 14400]
//	                   [-days 2] [-data file.csv] [-dir segments/]
//	                   [-covers covers.emcv] [-live] [-speedup 3600]
//	                   [-seed 1]
//
// With -data, raw tuples are loaded from a CSV file ("t,x,y,s" header);
// otherwise a synthetic Lausanne deployment of -days days is generated.
// With -dir, ingestion is durable and previous segments are recovered.
// With -covers, built model covers are snapshotted for warm restarts.
// With -live, data is streamed in via the ingestion service at -speedup×
// real time instead of being bulk-loaded, so covers appear as windows
// fill — the demo-floor mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro"
	"repro/internal/ingest"
	"repro/internal/tuple"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		tcp     = flag.String("tcp", "", "TCP wire-protocol listen address (empty = disabled)")
		window  = flag.Float64("window", 4*3600, "modeling window length H in seconds")
		days    = flag.Float64("days", 2, "days of synthetic data when -data is unset")
		data    = flag.String("data", "", "CSV file of raw tuples to load instead of simulating")
		dir     = flag.String("dir", "", "directory for durable segment files (empty = memory only)")
		covers  = flag.String("covers", "", "model-cover snapshot file for warm restarts")
		live    = flag.Bool("live", false, "stream data in via the ingestion service instead of bulk loading")
		speedup = flag.Float64("speedup", 3600, "stream seconds per wall second in -live mode")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(options{
		addr: *addr, tcp: *tcp, window: *window, days: *days,
		data: *data, dir: *dir, covers: *covers,
		live: *live, speedup: *speedup, seed: *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-server:", err)
		os.Exit(1)
	}
}

type options struct {
	addr, tcp, data, dir, covers string
	window, days, speedup        float64
	seed                         int64
	live                         bool
}

func run(o options) error {
	p, err := repro.Open(repro.Config{
		WindowSeconds: o.window,
		Dir:           o.dir,
		CoverSnapshot: o.covers,
	})
	if err != nil {
		return err
	}
	defer p.Close()

	readings, err := loadReadings(o)
	if err != nil {
		return err
	}

	if o.live {
		go runLive(p, readings, o.speedup)
		fmt.Printf("live mode: streaming %d tuples at %.0fx real time\n", len(readings), o.speedup)
	} else {
		if err := p.Ingest(readings); err != nil {
			return err
		}
		fmt.Printf("bulk loaded %d raw tuples\n", len(readings))
	}

	if o.tcp != "" {
		srv, tcpAddr, err := p.ListenTCP(o.tcp)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving binary wire protocol on %s\n", tcpAddr)
	}

	fmt.Printf("serving EnviroMeter API on %s (window H = %.0f s)\n", o.addr, o.window)
	fmt.Println("  GET  /v1/query/point?t=&x=&y=")
	fmt.Println("  POST /v1/query/continuous")
	fmt.Println("  GET  /v1/models?t=")
	fmt.Println("  GET  /v1/heatmap?t=&cols=&rows=   (and /v1/heatmap.png)")
	fmt.Println("  POST /v1/ingest")
	fmt.Println("  GET  /v1/stats")
	return http.ListenAndServe(o.addr, p.Handler())
}

func loadReadings(o options) ([]repro.Reading, error) {
	if o.data != "" {
		f, err := os.Open(o.data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		b, err := tuple.ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", o.data, err)
		}
		fmt.Printf("loaded %d raw tuples from %s\n", len(b), o.data)
		return []repro.Reading(b), nil
	}
	readings, err := repro.SimulateLausanne(o.seed, o.days*86400)
	if err != nil {
		return nil, err
	}
	fmt.Printf("simulated %d raw tuples (%.1f days, seed %d)\n", len(readings), o.days, o.seed)
	return readings, nil
}

// runLive pumps readings through the ingestion service at the configured
// speedup; ingestion errors terminate the stream but not the server.
func runLive(p *repro.Platform, readings []repro.Reading, speedup float64) {
	replayer, err := ingest.NewReplayer(tuple.Batch(readings), 60)
	if err != nil {
		fmt.Fprintln(os.Stderr, "live ingest:", err)
		return
	}
	svc, err := ingest.NewService(replayer, platformSink{p}, ingest.Config{Speedup: speedup})
	if err != nil {
		fmt.Fprintln(os.Stderr, "live ingest:", err)
		return
	}
	if err := svc.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "live ingest stopped:", err)
		return
	}
	st := svc.Stats()
	fmt.Printf("live ingest complete: %d tuples in %d batches (%d rejected)\n",
		st.Tuples, st.Batches, st.Rejected)
}

// platformSink adapts the public facade to the ingest.Sink interface.
type platformSink struct{ p *repro.Platform }

func (s platformSink) Ingest(b tuple.Batch) error { return s.p.Ingest([]repro.Reading(b)) }
