// Command envirometer-vet is the project's consolidated static-analysis
// gate: it runs the stock `go vet` passes plus the repository's own
// invariant analyzers — lockcheck, ctxcheck, wiretag, colfmt, errcmp,
// and chanbound (see docs/DEVELOPMENT.md) — over the packages matched
// by its arguments and exits non-zero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/envirometer-vet ./...
//
// Flags:
//
//	-novet    skip the stock `go vet` subprocess (project analyzers only)
//	-list     print the project analyzers and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/chanbound"
	"repro/internal/analysis/colfmt"
	"repro/internal/analysis/ctxcheck"
	"repro/internal/analysis/errcmp"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/wiretag"
)

// analyzers is the project suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	chanbound.Analyzer,
	colfmt.Analyzer,
	ctxcheck.Analyzer,
	errcmp.Analyzer,
	lockcheck.Analyzer,
	wiretag.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the stock go vet passes")
	list := flag.Bool("list", false, "list the project analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "envirometer-vet: go vet failed")
			failed = true
		}
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-vet:", err)
		os.Exit(2)
	}
	type posDiag struct {
		file      string
		line, col int
		msg       string
	}
	var diags []posDiag
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				diags = append(diags, posDiag{
					file: p.Filename, line: p.Line, col: p.Column,
					msg: fmt.Sprintf("%s: %s", name, d.Message),
				})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "envirometer-vet: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.msg < b.msg
	})
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s\n", d.file, d.line, d.col, d.msg)
	}
	if len(diags) > 0 || failed {
		os.Exit(1)
	}
}
