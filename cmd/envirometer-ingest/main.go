// Command envirometer-ingest generates the synthetic lausanne-data
// equivalent and writes it out — as a CSV file for inspection and external
// tooling, or as durable store segments a server can recover directly.
//
// Usage:
//
//	envirometer-ingest -out lausanne.csv [-days 30] [-seed 1]
//	envirometer-ingest -out lausanne.csv -pollutants CO2,CO,PM [-days 30]
//	envirometer-ingest -segments dir/ [-window 14400] [-days 30] [-seed 1]
//	                   [-sync every|never] [-checkpoint]
//
// With -pollutants, one file (or segment directory) per pollutant is
// written, suffixed with the pollutant name. In segments mode, -sync
// picks the durability policy: "every" fsyncs each appended batch
// (slow, crash-safe), "never" writes as fast as the OS allows and syncs
// once at the end — fine for bulk dataset generation, where a crash
// just means regenerating. With -checkpoint, the finished store is
// checkpointed and its segment log compacted away, so a server opening
// the directory recovers from the checkpoint instantly instead of
// replaying the whole log.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tuple"
)

func main() {
	var (
		out      = flag.String("out", "", "write raw tuples as CSV to this file")
		segments = flag.String("segments", "", "write raw tuples as durable segments into this directory")
		window   = flag.Float64("window", 4*3600, "window length H in seconds (segments mode)")
		days     = flag.Float64("days", 30, "deployment duration in days")
		seed     = flag.Int64("seed", 1, "deterministic simulation seed")
		polls    = flag.String("pollutants", "", "comma-separated pollutants (CO2,CO,PM); empty = CO2 only")
		syncMode = flag.String("sync", "never", "segments durability: every (fsync per batch) or never (bulk)")
		ck       = flag.Bool("checkpoint", false, "checkpoint the finished store and compact its segment log")
	)
	flag.Parse()
	if *out == "" && *segments == "" {
		fmt.Fprintln(os.Stderr, "envirometer-ingest: need -out or -segments")
		os.Exit(2)
	}
	var sync store.SyncPolicy
	switch *syncMode {
	case "every", "":
		sync = store.SyncEveryBatch()
	case "never":
		sync = store.SyncNever()
	default:
		fmt.Fprintf(os.Stderr, "envirometer-ingest: unknown -sync mode %q (want every or never)\n", *syncMode)
		os.Exit(2)
	}
	if err := run(*out, *segments, *window, *days, *seed, *polls, sync, *ck); err != nil {
		fmt.Fprintln(os.Stderr, "envirometer-ingest:", err)
		os.Exit(1)
	}
}

func run(out, segments string, window, days float64, seed int64, polls string, sync store.SyncPolicy, ck bool) error {
	cfg := sim.DefaultLausanne(seed)
	cfg.Duration = days * 86400
	if polls != "" {
		return runMulti(out, segments, window, cfg, polls, sync, ck)
	}
	data, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d raw tuples (%.1f days, %d vehicles, seed %d)\n",
		len(data), days, len(cfg.Vehicles), seed)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := tuple.WriteCSV(f, data); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote CSV to %s\n", out)
	}
	if segments != "" {
		st, err := store.Open(store.Config{WindowLength: window, Dir: segments, Sync: sync})
		if err != nil {
			return err
		}
		// Append in day-sized batches so segment frames stay reasonable.
		const batch = 86400 / 60 * 4
		for start := 0; start < len(data); start += batch {
			end := start + batch
			if end > len(data) {
				end = len(data)
			}
			if err := st.Append(data[start:end]); err != nil {
				st.Close()
				return err
			}
		}
		if ck {
			if err := st.Checkpoint(); err != nil {
				st.Close()
				return err
			}
		}
		if err := st.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote durable segments to %s (window H = %.0f s, checkpointed: %v)\n", segments, window, ck)
	}
	return nil
}

// runMulti writes one dataset per pollutant, suffixing each destination.
func runMulti(out, segments string, window float64, cfg sim.Config, polls string, sync store.SyncPolicy, ck bool) error {
	pollutants, err := tuple.ParsePollutantList(polls)
	if err != nil {
		return err
	}
	data, err := sim.GenerateMulti(cfg, pollutants)
	if err != nil {
		return err
	}
	for _, p := range pollutants {
		b := data[p]
		fmt.Printf("generated %d %s tuples\n", len(b), p)
		if out != "" {
			path := out + "." + p.String()
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tuple.WriteCSV(f, b); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote CSV to %s\n", path)
		}
		if segments != "" {
			dir := segments + "." + p.String()
			st, err := store.Open(store.Config{WindowLength: window, Dir: dir, Sync: sync})
			if err != nil {
				return err
			}
			if err := st.Append(b); err != nil {
				st.Close()
				return err
			}
			if ck {
				if err := st.Checkpoint(); err != nil {
					st.Close()
					return err
				}
			}
			if err := st.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote durable segments to %s\n", dir)
		}
	}
	return nil
}
