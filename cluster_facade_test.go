package repro

// Facade-level cluster tests: a real two-node cluster over TCP (each
// Platform serving the binary wire protocol, peers dialed lazily), and
// the /v1/cluster HTTP endpoint.

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"

	"repro/internal/wire"
)

// reservePorts grabs n distinct localhost TCP addresses and releases
// them for the platforms to re-listen on.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func clusterField(x, y float64) float64 { return 410 + 0.02*x - 0.01*y }

func TestClusteredPlatformsOverTCP(t *testing.T) {
	addrs := reservePorts(t, 2)
	ctx := context.Background()

	open := func(id int) *Platform {
		p, err := Open(Config{
			WindowSeconds: 3600,
			Pollutants:    []Pollutant{CO2},
			Cluster: ClusterConfig{
				Nodes:  addrs,
				NodeID: id,
				Cells:  6,
				Region: Rect{Min: Point{X: -1500, Y: -1500}, Max: Point{X: 1500, Y: 1500}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		srv, _, err := p.ListenTCP(addrs[id])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return p
	}
	p0, p1 := open(0), open(1)
	if !p0.Clustered() || !p1.Clustered() {
		t.Fatal("platforms not clustered")
	}

	// Lattice spread over both nodes' shards.
	var readings []Reading
	for x := -1400.0; x <= 1400; x += 200 {
		for y := -1400.0; y <= 1400; y += 200 {
			readings = append(readings, Reading{T: 600, X: x, Y: y, S: clusterField(x, y)})
		}
	}
	ownedBy0 := 0
	for _, r := range readings {
		if p0.Owns(CO2, r.X, r.Y) {
			ownedBy0++
		}
	}
	if ownedBy0 == 0 || ownedBy0 == len(readings) {
		t.Fatalf("degenerate sharding: node 0 owns %d of %d readings", ownedBy0, len(readings))
	}

	// Ingest everything through node 0: its own shards locally, node 1's
	// over TCP.
	if err := p0.Ingest(ctx, CO2, readings); err != nil {
		t.Fatal(err)
	}
	if got := p0.Len() + p1.Len(); got != len(readings) {
		t.Fatalf("cluster holds %d readings, ingested %d", got, len(readings))
	}
	if p1.Len() != len(readings)-ownedBy0 {
		t.Fatalf("node 1 holds %d readings, owns %d", p1.Len(), len(readings)-ownedBy0)
	}

	// Every query answers identically through both platforms, wherever
	// the shard lives.
	for i := 0; i < len(readings); i += 7 {
		req := Request{T: 600, X: readings[i].X, Y: readings[i].Y, Pollutant: CO2}
		v0, err0 := p0.Query(ctx, req)
		v1, err1 := p1.Query(ctx, req)
		if err0 != nil || err1 != nil {
			t.Fatalf("clustered query at (%v,%v): %v / %v", req.X, req.Y, err0, err1)
		}
		if v0 != v1 {
			t.Fatalf("platforms disagree at (%v,%v): %v vs %v", req.X, req.Y, v0, v1)
		}
	}

	// Batches split across the nodes.
	reqs := []Request{
		{T: 600, X: -1400, Y: -1400, Pollutant: CO2},
		{T: 600, X: 1400, Y: 1400, Pollutant: CO2},
		{T: 600, X: 0, Y: 1400, Pollutant: CO2},
	}
	rs, err := p1.QueryBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
	}

	// Heatmaps scatter-gather over TCP; both nodes assemble one map.
	g0, err := p0.Heatmap(ctx, CO2, 600, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := p1.Heatmap(ctx, CO2, 600, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g0.Region != g1.Region {
		t.Fatalf("heatmap regions differ: %v vs %v", g0.Region, g1.Region)
	}

	// The model response merges both nodes' covers.
	mr, err := p0.ModelResponse(ctx, CO2, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centroids) < 2 {
		t.Fatalf("merged model response has %d regions", len(mr.Centroids))
	}

	if st := p0.ClusterStats(); st.Forwarded == 0 && st.Scatters == 0 {
		t.Error("node 0 never used the cluster")
	}
}

func TestClusterHTTPEndpoint(t *testing.T) {
	addrs := reservePorts(t, 2)
	p, err := Open(Config{
		WindowSeconds: 3600,
		Pollutants:    []Pollutant{CO2},
		Cluster:       ClusterConfig{Nodes: addrs, NodeID: 0, Cells: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/cluster: %s", resp.Status)
	}
	var doc struct {
		Self   int                         `json:"self"`
		Ring   wire.RingResponse           `json:"ring"`
		Shards map[string]map[string][]int `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Self != 0 {
		t.Errorf("self = %d, want 0", doc.Self)
	}
	if len(doc.Ring.Nodes) != 2 || len(doc.Ring.Cells) != 4 || doc.Ring.VNodes == 0 {
		t.Errorf("ring document incomplete: %+v", doc.Ring)
	}
	owned := 0
	for _, perNode := range doc.Shards {
		for _, cells := range perNode {
			owned += len(cells)
		}
	}
	if owned != 4 { // one pollutant x four cells
		t.Errorf("shard table covers %d cells, want 4", owned)
	}
}
