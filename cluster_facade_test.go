package repro

// Facade-level cluster tests: a real two-node cluster over TCP (each
// Platform serving the binary wire protocol, peers dialed lazily), and
// the /v1/cluster HTTP endpoint.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// reservePorts grabs n distinct localhost TCP addresses and releases
// them for the platforms to re-listen on.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func clusterField(x, y float64) float64 { return 410 + 0.02*x - 0.01*y }

func TestClusteredPlatformsOverTCP(t *testing.T) {
	addrs := reservePorts(t, 2)
	ctx := context.Background()

	open := func(id int) *Platform {
		p, err := Open(Config{
			WindowSeconds: 3600,
			Pollutants:    []Pollutant{CO2},
			Cluster: ClusterConfig{
				Nodes:  addrs,
				NodeID: id,
				Cells:  6,
				Region: Rect{Min: Point{X: -1500, Y: -1500}, Max: Point{X: 1500, Y: 1500}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		srv, _, err := p.ListenTCP(addrs[id])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return p
	}
	p0, p1 := open(0), open(1)
	if !p0.Clustered() || !p1.Clustered() {
		t.Fatal("platforms not clustered")
	}

	// Lattice spread over both nodes' shards.
	var readings []Reading
	for x := -1400.0; x <= 1400; x += 200 {
		for y := -1400.0; y <= 1400; y += 200 {
			readings = append(readings, Reading{T: 600, X: x, Y: y, S: clusterField(x, y)})
		}
	}
	ownedBy0 := 0
	for _, r := range readings {
		if p0.Owns(CO2, r.X, r.Y) {
			ownedBy0++
		}
	}
	if ownedBy0 == 0 || ownedBy0 == len(readings) {
		t.Fatalf("degenerate sharding: node 0 owns %d of %d readings", ownedBy0, len(readings))
	}

	// Ingest everything through node 0: its own shards locally, node 1's
	// over TCP.
	if err := p0.Ingest(ctx, CO2, readings); err != nil {
		t.Fatal(err)
	}
	if got := p0.Len() + p1.Len(); got != len(readings) {
		t.Fatalf("cluster holds %d readings, ingested %d", got, len(readings))
	}
	if p1.Len() != len(readings)-ownedBy0 {
		t.Fatalf("node 1 holds %d readings, owns %d", p1.Len(), len(readings)-ownedBy0)
	}

	// Every query answers identically through both platforms, wherever
	// the shard lives.
	for i := 0; i < len(readings); i += 7 {
		req := Request{T: 600, X: readings[i].X, Y: readings[i].Y, Pollutant: CO2}
		v0, err0 := p0.Query(ctx, req)
		v1, err1 := p1.Query(ctx, req)
		if err0 != nil || err1 != nil {
			t.Fatalf("clustered query at (%v,%v): %v / %v", req.X, req.Y, err0, err1)
		}
		if v0 != v1 {
			t.Fatalf("platforms disagree at (%v,%v): %v vs %v", req.X, req.Y, v0, v1)
		}
	}

	// Batches split across the nodes.
	reqs := []Request{
		{T: 600, X: -1400, Y: -1400, Pollutant: CO2},
		{T: 600, X: 1400, Y: 1400, Pollutant: CO2},
		{T: 600, X: 0, Y: 1400, Pollutant: CO2},
	}
	rs, err := p1.QueryBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
	}

	// Heatmaps scatter-gather over TCP; both nodes assemble one map.
	g0, err := p0.Heatmap(ctx, CO2, 600, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := p1.Heatmap(ctx, CO2, 600, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g0.Region != g1.Region {
		t.Fatalf("heatmap regions differ: %v vs %v", g0.Region, g1.Region)
	}

	// The model response merges both nodes' covers.
	mr, err := p0.ModelResponse(ctx, CO2, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centroids) < 2 {
		t.Fatalf("merged model response has %d regions", len(mr.Centroids))
	}

	if st := p0.ClusterStats(); st.Forwarded == 0 && st.Scatters == 0 {
		t.Error("node 0 never used the cluster")
	}
}

// TestClusteredPlatformsReplicated: a real 3-node TCP cluster with
// Replicas: 2. Ingests commit at their shard's owner and stream to its
// ring successor's mirror engine; killing one node's server yields zero
// query errors through the survivors — every answer comes back
// byte-equal from a replica — and scatter-gather (heatmap) still
// assembles the full grid. With a second node down, scatter-gather
// degrades to a marked partial result instead of an all-or-nothing
// error.
func TestClusteredPlatformsReplicated(t *testing.T) {
	addrs := reservePorts(t, 3)
	ctx := context.Background()

	servers := make([]io.Closer, 3)
	plats := make([]*Platform, 3)
	httpSrvs := make([]*httptest.Server, 3)
	for id := 0; id < 3; id++ {
		p, err := Open(Config{
			WindowSeconds: 3600,
			Pollutants:    []Pollutant{CO2},
			Cluster: ClusterConfig{
				Nodes:    addrs,
				NodeID:   id,
				Cells:    6,
				Region:   Rect{Min: Point{X: -1500, Y: -1500}, Max: Point{X: 1500, Y: 1500}},
				Replicas: 2,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		srv, _, err := p.ListenTCP(addrs[id])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		plats[id], servers[id] = p, srv
		httpSrvs[id] = httptest.NewServer(p.Handler())
		t.Cleanup(httpSrvs[id].Close)
	}

	var readings []Reading
	for x := -1400.0; x <= 1400; x += 200 {
		for y := -1400.0; y <= 1400; y += 200 {
			readings = append(readings, Reading{T: 600, X: x, Y: y, S: clusterField(x, y)})
		}
	}
	if err := plats[0].Ingest(ctx, CO2, readings); err != nil {
		t.Fatal(err)
	}

	// Wait for the replication streams to drain: every streamed frame
	// applied to a mirror, observed through GET /v1/cluster.
	type clusterDoc struct {
		Replication *struct {
			Streamed int64 `json:"streamed"`
			Applied  int64 `json:"applied"`
			Mirrors  int   `json:"mirrors"`
		} `json:"replication"`
	}
	readDoc := func(i int) clusterDoc {
		resp, err := httpSrvs[i].Client().Get(httpSrvs[i].URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc clusterDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		streamed, applied, mirrors := int64(0), int64(0), 0
		for i := 0; i < 3; i++ {
			doc := readDoc(i)
			if doc.Replication == nil {
				t.Fatalf("node %d /v1/cluster has no replication section on a replicated ring", i)
			}
			streamed += doc.Replication.Streamed
			applied += doc.Replication.Applied
			mirrors += doc.Replication.Mirrors
		}
		if streamed > 0 && applied == streamed && mirrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never drained: streamed %d, applied %d, mirrors %d", streamed, applied, mirrors)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Record every sample's answer (and the full heatmap) before the
	// kill, then take node 2 off the network.
	var samples []Request
	for i := 0; i < len(readings); i += 7 {
		samples = append(samples, Request{T: 600, X: readings[i].X, Y: readings[i].Y, Pollutant: CO2})
	}
	want := make([]float64, len(samples))
	for i, req := range samples {
		v, err := plats[0].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	preGrid, err := plats[0].Heatmap(ctx, CO2, 600, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	servers[2].Close()

	victimOwned := 0
	for i, req := range samples {
		if !plats[0].Owns(CO2, req.X, req.Y) && !plats[1].Owns(CO2, req.X, req.Y) {
			victimOwned++
		}
		v, err := plats[0].Query(ctx, req)
		if err != nil {
			t.Fatalf("query at (%v,%v) failed after killing node 2: %v", req.X, req.Y, err)
		}
		if v != want[i] {
			t.Fatalf("failover answer %v at (%v,%v), was %v", v, req.X, req.Y, want[i])
		}
	}
	if victimOwned == 0 {
		t.Fatal("no sample owned by the killed node")
	}
	if plats[0].ClusterStats().FailedOver == 0 {
		t.Error("no request counted as failed over")
	}

	// Scatter-gather heals byte-equal from the mirrors.
	postGrid, err := plats[0].Heatmap(ctx, CO2, 600, 16, 16)
	if err != nil {
		t.Fatalf("heatmap after node loss: %v", err)
	}
	if !reflect.DeepEqual(preGrid, postGrid) {
		t.Fatal("post-kill heatmap differs from pre-kill")
	}

	// Two nodes down: scatter-gather answers what it can. Whether the
	// survivor's mirrors cover everything depends on the ring layout, so
	// the contract is: either a full grid, or a grid alongside
	// ErrPartialResult — never a bare error.
	servers[1].Close()
	g, err := plats[0].Heatmap(ctx, CO2, 600, 16, 16)
	if err != nil && !errors.Is(err, ErrPartialResult) {
		t.Fatalf("heatmap with two nodes down: %v, want nil or ErrPartialResult", err)
	}
	if g == nil || len(g.Values) == 0 {
		t.Fatal("heatmap with two nodes down carried no grid")
	}
	if err != nil {
		var pe *cluster.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("partial error %v does not unwrap to *cluster.PartialError", err)
		}
		if len(pe.Dead) == 0 {
			t.Fatal("partial error names no dead node")
		}
	}
}

func TestClusterHTTPEndpoint(t *testing.T) {
	addrs := reservePorts(t, 2)
	p, err := Open(Config{
		WindowSeconds: 3600,
		Pollutants:    []Pollutant{CO2},
		Cluster:       ClusterConfig{Nodes: addrs, NodeID: 0, Cells: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/cluster: %s", resp.Status)
	}
	var doc struct {
		Self   int                         `json:"self"`
		Ring   wire.RingResponse           `json:"ring"`
		Shards map[string]map[string][]int `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Self != 0 {
		t.Errorf("self = %d, want 0", doc.Self)
	}
	if len(doc.Ring.Nodes) != 2 || len(doc.Ring.Cells) != 4 || doc.Ring.VNodes == 0 {
		t.Errorf("ring document incomplete: %+v", doc.Ring)
	}
	owned := 0
	for _, perNode := range doc.Shards {
		for _, cells := range perNode {
			owned += len(cells)
		}
	}
	if owned != 4 { // one pollutant x four cells
		t.Errorf("shard table covers %d cells, want 4", owned)
	}
}
