package repro

// Full-pipeline integration test: simulate the deployment, stream it in
// through the ingestion service, serve the wire protocol over TCP, run a
// model-cache mobile client against it, and check the answers against
// both the server's direct engine and the simulator's ground truth.

import (
	"context"
	"math"
	"testing"

	"repro/internal/client"
	"repro/internal/eval"
	"repro/internal/ingest"
	"repro/internal/proto"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/tuple"
)

func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test skipped in -short mode")
	}
	// 1. Simulate six hours of the deployment.
	cfg := sim.DefaultLausanne(21)
	cfg.Duration = 6 * 3600
	data, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Stream it into a platform through the ingestion service (no
	// pacing: benchmark loading mode).
	p, err := Open(Config{WindowSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	replayer, err := ingest.NewReplayer(data, 300)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ingest.NewService(replayer, platformSink{p}, ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Tuples; int(got) != len(data) {
		t.Fatalf("ingested %d of %d tuples", got, len(data))
	}

	// 3. Serve the wire protocol over TCP.
	srv, addr, err := p.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// 4. A model-cache mobile client rides along route 0 for an hour.
	conn, err := proto.Dial(addr.String(), proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mc := client.NewModelCache(conn)
	routePl := cfg.Vehicles[0].Route
	qs := make([]query.Request, 60)
	for i := range qs {
		tm := 2*3600 + float64(i)*60
		pos := routePl.AtLoop(6 * float64(i) * 60)
		qs[i] = query.Request{T: tm, X: pos.X, Y: pos.Y}
	}
	answers, err := client.RunContinuous(mc, qs)
	if err != nil {
		t.Fatal(err)
	}

	// 5a. Client answers must match the server's own interpolation.
	for i, a := range answers {
		want, err := p.Query(context.Background(), qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Value-want) > 1e-9 {
			t.Fatalf("query %d: client %v vs server %v", i, a.Value, want)
		}
	}
	// All but the first answer are local (one window, one fetch).
	st := mc.CacheStats()
	if st.Refreshes != 1 || st.Hits != 59 {
		t.Errorf("cache stats = %+v, want 1 refresh / 59 hits", st)
	}

	// 5b. Accuracy against ground truth: the on-route answers should be
	// well under 10% NRMSE (the queries sit exactly on sensed corridors).
	est := make([]float64, len(answers))
	truth := make([]float64, len(answers))
	for i, a := range answers {
		est[i] = a.Value
		truth[i] = cfg.Field.TrueValue(qs[i].T, qs[i].X, qs[i].Y)
	}
	nrmse, err := eval.NRMSE(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse > 12 {
		t.Errorf("end-to-end NRMSE = %.2f%%, want < 12%%", nrmse)
	}
}

// platformSink adapts the facade to ingest.Sink (mirrors the server cmd).
type platformSink struct{ p *Platform }

func (s platformSink) Ingest(b tuple.Batch) error {
	return s.p.Ingest(context.Background(), CO2, []Reading(b))
}
