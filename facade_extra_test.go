package repro

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/proto"
	"repro/internal/route"
	"repro/internal/wire"
)

func TestCoverSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "covers.emcv")

	p, err := Open(Config{WindowSeconds: 3600, Dir: dir, CoverSnapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	readings, err := SimulateLausanne(9, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(context.Background(), CO2, readings); err != nil {
		t.Fatal(err)
	}
	// Build covers for both windows, then close (which snapshots).
	v1, err := p.Query(context.Background(), Request{T: 1800, X: 500, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query(context.Background(), Request{T: 5400, X: 500, Y: 500}); err != nil {
		t.Fatal(err)
	}
	if err := p.SaveCovers(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the primed cover must answer identically without rebuild.
	p2, err := Open(Config{WindowSeconds: 3600, Dir: dir, CoverSnapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	v2, err := p2.Query(context.Background(), Request{T: 1800, X: 500, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-9 {
		t.Errorf("warm restart answer %v differs from original %v", v2, v1)
	}
}

func TestSaveCoversWithoutConfig(t *testing.T) {
	p, err := Open(Config{WindowSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SaveCovers(); err == nil {
		t.Error("SaveCovers without CoverSnapshot should error")
	}
}

func TestListenTCPServesClients(t *testing.T) {
	p := openWithData(t)
	defer p.Close()
	srv, addr, err := p.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := proto.Dial(addr.String(), proto.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exchange(wire.QueryRequest{T: 7200, X: 800, Y: 600})
	if err != nil {
		t.Fatal(err)
	}
	qr, ok := resp.(wire.QueryResponse)
	if !ok {
		t.Fatalf("got %T", resp)
	}
	want, err := p.Query(context.Background(), Request{T: 7200, X: 800, Y: 600})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qr.Value-want) > 1e-9 {
		t.Errorf("TCP answer %v vs direct %v", qr.Value, want)
	}
}

func TestRouteSummaryAgainstPlatform(t *testing.T) {
	// The app-side flow: record a route, summarize it against the
	// platform's query engine as the oracle.
	p := openWithData(t)
	defer p.Close()
	rec := route.NewRecorder(route.RecorderConfig{})
	for i := 0; i < 10; i++ {
		rec.Add(route.Fix{
			T:   7200 + float64(i)*60,
			Pos: Point{X: 200 + float64(i)*120, Y: 450 + float64(i)*60},
		})
	}
	rt, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := route.Summarize(rt, func(t, x, y float64) (float64, error) {
		return p.Query(context.Background(), Request{T: t, X: x, Y: y})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Points) != rt.Len() {
		t.Fatalf("summary points = %d, route fixes = %d", len(sum.Points), rt.Len())
	}
	if sum.Average <= 0 || sum.Advice == "" {
		t.Errorf("summary incomplete: %+v", sum)
	}
}

// TestPlatformAsyncIngestKnobs exercises the ISSUE 3 facade surface:
// grouped-commit durability, the ingest pipeline counters, background
// cover maintenance, and the closed-platform write refusal.
func TestPlatformAsyncIngestKnobs(t *testing.T) {
	p, err := Open(Config{
		WindowSeconds: 3600,
		Dir:           t.TempDir(),
		Sync:          SyncGrouped(8, 0),
		IngestQueue:   PipelineConfig{QueueDepth: 16},
		Maintenance:   SchedulerConfig{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	readings, err := SimulateLausanne(11, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Ingest(ctx, CO2, readings); err != nil {
		t.Fatal(err)
	}
	p.WaitMaintenance()
	if ms := p.MaintenanceStats(); ms.Built < 2 {
		t.Fatalf("MaintenanceStats = %+v, want both windows prebuilt", ms)
	}
	if is := p.IngestStats(); is.Submitted != 1 || is.Appends != 1 {
		t.Fatalf("IngestStats = %+v, want one submitted upload and one append", is)
	}
	// The prebuilt cover answers without a query-path build.
	if _, err := p.Query(ctx, Request{T: 1800, X: 500, Y: 500}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(ctx, CO2, readings); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
}
