// Package repro is EnviroMeter: a platform for querying community-sensed
// data, reproducing Sathe, Oviedo, Chakraborty and Aberer, "EnviroMeter: A
// Platform for Querying Community-Sensed Data", PVLDB 6(12), 2013.
//
// The platform ingests raw sensor tuples from a large-area community-driven
// sensor network (pollution sensors on public-transport buses), maintains
// an adaptive multi-model abstraction over each time window (the Ad-KMN
// model cover) per monitored pollutant, and answers point and continuous
// pollution queries by evaluating the nearest region model — orders of
// magnitude faster and smaller than querying indexed raw data. A
// model-cache wire protocol ships whole covers to mobile clients so they
// answer queries locally.
//
// Quick start (the v1 query API):
//
//	p, err := repro.Open(repro.Config{
//		WindowSeconds: 4 * 3600,
//		Pollutants:    []repro.Pollutant{repro.CO2, repro.CO},
//	})
//	...
//	err = p.Ingest(ctx, repro.CO2, readings)  // raw (t, x, y, s) tuples
//	v, err := p.Query(ctx, repro.Request{T: t, X: x, Y: y, Pollutant: repro.CO2})
//	rs, err := p.QueryBatch(ctx, reqs)        // many requests, one call,
//	                                          // concurrent, per-item errors
//	http.ListenAndServe(addr, p.Handler())    // the web/JSON API
//
// Failures carry a typed taxonomy — ErrNoCover, ErrOutOfWindow,
// ErrUnknownPollutant — matched with errors.Is. Query behaviour is tuned
// per call with functional options: WithRadius switches to a raw radius
// average, WithProcessor selects any of the paper's four query methods,
// and deadlines/cancellation arrive through the context.
//
// Setting Config.Cluster makes the platform one member of a sharded
// multi-node cluster: tuples and queries partition by (pollutant,
// geo-cell) shard keys on a consistent-hash ring, and every platform
// routes requests it does not own to the node that does.
//
// The deeper layers (spatial indexes, k-means, regression, wire codecs,
// the shard ring, the simulated deployment) live in internal/ packages;
// this package re-exports the surface a downstream user needs. See
// docs/ARCHITECTURE.md for how a tuple travels through those layers and
// docs/OPERATIONS.md for running the server.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/coverio"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/ingest"
	"repro/internal/proto"
	"repro/internal/query"
	"repro/internal/regress"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Reading is one raw sensor tuple b = (t, x, y, s): stream time in
// seconds, local-frame position in meters, and the sensed value.
type Reading = tuple.Raw

// Pollutant identifies a sensed phenomenon (CO2, CO, PM).
type Pollutant = tuple.Pollutant

// Pollutants supported by the platform.
const (
	CO2 = tuple.CO2
	CO  = tuple.CO
	PM  = tuple.PM
)

// ParsePollutant resolves a pollutant from its abbreviation ("co2",
// "CO", "pm"), case-insensitively.
func ParsePollutant(s string) (Pollutant, error) { return tuple.ParsePollutant(s) }

// Request is one v1 query: interpolate Pollutant at (X, Y) and stream
// time T. The zero Pollutant is CO2.
type Request = query.Request

// BatchResult is one request's outcome within a QueryBatch: its value,
// or the error that request (alone) failed with.
type BatchResult = query.BatchResult

// The v1 error taxonomy, matched with errors.Is.
var (
	// ErrNoCover: the window has data but no model cover could be built.
	ErrNoCover = query.ErrNoCover
	// ErrOutOfWindow: the query time lies outside the retained data.
	ErrOutOfWindow = query.ErrOutOfWindow
	// ErrUnknownPollutant: the pollutant is invalid or not monitored.
	ErrUnknownPollutant = query.ErrUnknownPollutant
	// ErrIngestSaturated: the pollutant's ingest queue is full and the
	// overflow policy sheds load (the HTTP API's 429).
	ErrIngestSaturated = ingest.ErrSaturated
	// ErrClosed: the platform (or its engine) has been closed; the write
	// path refuses new work.
	ErrClosed = server.ErrEngineClosed
	// ErrNotRoutable: on a clustered platform, the request combines
	// processor options (radius/indexed methods, which evaluate raw
	// windows) with a shard another node owns (the HTTP API's 400).
	ErrNotRoutable = server.ErrNotRoutable
	// ErrNodeUnreachable: a shard's owner node is down; requests for its
	// shards fail until it returns (the HTTP API's 502). On a replicated
	// cluster (ClusterConfig.Replicas > 1) reads fail over to replicas
	// first, so this surfaces only when a shard's whole replica set is
	// down.
	ErrNodeUnreachable = cluster.ErrNodeUnreachable
	// ErrPartialResult: a replicated cluster assembled a scatter-gather
	// answer (heatmap, model cover) without some dead node's shards — no
	// live replica could stand in. The value is returned alongside this
	// error; errors.As against *cluster.PartialError recovers which
	// nodes are dead and how many shards are stale.
	ErrPartialResult = cluster.ErrPartialResult
)

// SyncPolicy selects when durable appends reach stable storage; build
// one with SyncEveryBatch, SyncGrouped, or SyncNever.
type SyncPolicy = store.SyncPolicy

// SyncEveryBatch fsyncs every appended batch before acknowledging it —
// the default whenever Config.Dir is set.
func SyncEveryBatch() SyncPolicy { return store.SyncEveryBatch() }

// SyncGrouped amortizes durability: one fsync covers up to maxBatches
// appends or maxDelay of accumulation (group commit); every append is
// acknowledged only after its group's fsync. 0 picks the defaults.
func SyncGrouped(maxBatches int, maxDelay time.Duration) SyncPolicy {
	return store.SyncGrouped(maxBatches, maxDelay)
}

// SyncNever acknowledges durable appends on write and leaves flushing to
// the OS — the platform's historical (weakest, fastest) guarantee.
func SyncNever() SyncPolicy { return store.SyncNever() }

// PipelineConfig tunes the asynchronous ingest pipeline: per-pollutant
// queue depth, upload coalescing, and the overflow policy.
type PipelineConfig = ingest.PipelineConfig

// Overflow policies for PipelineConfig.
const (
	// OverflowBlock makes a full queue exert backpressure: Ingest waits
	// for space (the default).
	OverflowBlock = ingest.Block
	// OverflowReject makes a full queue shed load: Ingest fails fast
	// with ErrIngestSaturated. The HTTP ingest endpoint always sheds.
	OverflowReject = ingest.Reject
)

// SchedulerConfig tunes the background cover-maintenance scheduler.
// Workers < 0 disables it, leaving every cover build on the query path.
type SchedulerConfig = core.SchedulerConfig

// SubscriptionConfig tunes the push-subscription registry behind
// Platform.Subscribe and GET /v1/subscribe: per-subscription event
// queue depth, re-evaluation workers, and subscription/point caps. The
// zero value queues 16 events, runs 2 workers, and caps at 1024
// subscriptions of 2048 points.
type SubscriptionConfig = subs.Config

// SubscriptionStats counts the push-subscription registry's work:
// active subscriptions, invalidation matches, re-evaluations avoided,
// and push/drop/resync totals.
type SubscriptionStats = subs.Stats

// Subscription is a live push subscription: a channel of events plus a
// snapshot/close surface. Close it when done; the platform also closes
// it (ending the event channel) at shutdown.
type Subscription = subs.Handle

// SubscriptionEvent is one pushed event: a delta of changed points, a
// full resync of the whole vector, or a subscription-level error.
type SubscriptionEvent = subs.Event

// SubscriptionPoint is one point's value (or error) within a pushed
// event, indexed into the subscribed point set.
type SubscriptionPoint = subs.PointValue

// CheckpointConfig tunes durability checkpoints: Interval > 0 enables
// periodic checkpoints (and a final one at Close); KeepSegments spares
// the newest N checkpoint-covered segment files from each compaction.
type CheckpointConfig = server.CheckpointConfig

// CheckpointStats aggregates checkpoint/compaction activity and the
// last restart's recovery path across every pollutant's store.
type CheckpointStats = server.CheckpointStats

// ColumnarConfig tunes the columnar checkpoint sidecars: Enabled turns
// them on, DisableMmap forces plain pread file access, BlockTuples caps
// tuples per block (0 = default).
type ColumnarConfig = store.ColumnarConfig

// ColumnarStats counts the columnar scan path's work across every
// pollutant's store: sidecars and blocks written, lazy recoveries and
// materializations, zone-map prunes, mmap vs pread reads, and row
// fallback replays.
type ColumnarStats = store.ColumnarStats

// PipelineStats counts the ingest pipeline's work.
type PipelineStats = ingest.PipelineStats

// SchedulerStats counts the cover-maintenance scheduler's work.
type SchedulerStats = core.SchedulerStats

// ProcessorKind selects the query method answering a request.
type ProcessorKind = query.Kind

// Processor kinds for WithProcessor.
const (
	ProcessorCover  = query.KindCover
	ProcessorNaive  = query.KindNaive
	ProcessorRTree  = query.KindRTree
	ProcessorVPTree = query.KindVPTree
)

// QueryOption tunes how one Query or QueryBatch call is answered.
type QueryOption func(*query.Options)

// WithRadius answers the query as an unweighted average of the raw
// tuples within r meters (the paper's naive method) instead of the model
// cover. Combine with WithProcessor to pick an indexed radius search.
func WithRadius(r float64) QueryOption {
	return func(o *query.Options) {
		o.Radius = r
		if o.Kind == "" || o.Kind == query.KindCover {
			o.Kind = query.KindNaive
		}
	}
}

// WithProcessor selects the query method: ProcessorCover (default),
// ProcessorNaive, ProcessorRTree, or ProcessorVPTree.
func WithProcessor(k ProcessorKind) QueryOption {
	return func(o *query.Options) { o.Kind = k }
}

// WithConcurrency bounds the worker pool answering a QueryBatch (0, the
// default, picks GOMAXPROCS; 1 forces sequential execution; large
// values are clamped to a small multiple of GOMAXPROCS). Single queries
// ignore it.
func WithConcurrency(n int) QueryOption {
	return func(o *query.Options) { o.Concurrency = n }
}

// Cover is a model cover: the (t_n, µ, M) triple of §2.1.
type Cover = core.Cover

// AdKMNConfig tunes the adaptive model-cover construction.
type AdKMNConfig = core.Config

// ModelResponse is the wire form of a cover, as served to model-cache
// clients.
type ModelResponse = wire.ModelResponse

// CO2Band classifies a concentration for display (OSHA-anchored).
type CO2Band = eval.CO2Band

// LatLon is a WGS84 coordinate; Point is a local metric position; Rect
// is an axis-aligned box in the local frame.
type (
	LatLon = geo.LatLon
	Point  = geo.Point
	Rect   = geo.Rect
)

// ClusterStats counts a cluster node's routing activity (requests
// answered locally, forwarded, scatter-gathered, bounced).
type ClusterStats = cluster.Stats

// ClusterConfig makes the platform one member of a sharded serving
// cluster: raw tuples and queries partition across nodes by
// (pollutant, geo-cell) shard keys on a consistent-hash ring. All
// nodes must be configured with identical Nodes/Cells/VNodes/Region/
// Seed so they derive the same ring.
type ClusterConfig struct {
	// Nodes lists every node's TCP wire address; a node's index here is
	// its ID, and an empty list disables clustering.
	Nodes []string
	// NodeID is this process's index in Nodes (ignored with Router).
	NodeID int
	// Router makes this process a dedicated query router: it owns no
	// shards and forwards/scatters everything.
	Router bool
	// Cells is the number of geo cells partitioning the region
	// (default 16). More cells spread load more evenly; fewer keep
	// shard-local covers larger.
	Cells int
	// VNodes is the consistent-hash virtual-node multiplier (default 64).
	VNodes int
	// Region is the deployment region the cells partition. The zero
	// value covers the simulated Lausanne corridor; set it to your
	// data's bounding box (identically on every node) for other
	// deployments. Positions outside the region still shard — they
	// belong to the nearest cell — but coarsely.
	Region Rect
	// Seed makes the k-means cell partition deterministic (default 1).
	Seed int64
	// Replicas is the replication factor R: every shard lives on its
	// owner plus the next R-1 distinct ring successors, which mirror the
	// owner's committed ingests and answer its shards when it dies. 0
	// and 1 both mean unreplicated (the pre-replication behavior).
	Replicas int
	// Join, when non-empty, is the wire address of any live member of
	// an existing cluster. Instead of deriving the ring from Nodes/
	// Cells/VNodes/Region/Seed (all ignored), the platform announces
	// Advertise to that seed and builds its node on the returned
	// next-epoch ring. The join is not visible to the rest of the
	// cluster until Platform.CompleteJoin bootstraps the gained shards
	// and commits the epoch — call it after ListenTCP so peers can
	// reach this node the moment the commit lands.
	Join string
	// Advertise is this node's own wire address exactly as peers
	// should dial it (required with Join; normally the ListenTCP
	// address with a routable host).
	Advertise string
}

// Config configures a Platform.
type Config struct {
	// WindowSeconds is the modeling window length H in stream seconds.
	// Covers are rebuilt per window and expire at the window edge.
	WindowSeconds float64
	// Pollutants lists the monitored pollutants; each gets its own store
	// and model covers, and with Dir/CoverSnapshot set each persists into
	// its own subdirectory / ".<pollutant>"-suffixed file. Empty means
	// single-pollutant, monitoring AdKMN.Pollutant (CO2 by default) with
	// the flat pre-v1 durable layout.
	Pollutants []Pollutant
	// Dir, when non-empty, makes ingestion durable: appended batches are
	// persisted to checksummed segment files and recovered on reopen.
	// With several pollutants, each persists into its own subdirectory.
	Dir string
	// Sync selects when durable appends reach stable storage (used only
	// with Dir). The zero value is SyncEveryBatch(); SyncGrouped
	// amortizes fsyncs across concurrent ingests, SyncNever trades crash
	// safety for throughput.
	Sync SyncPolicy
	// IngestQueue tunes the asynchronous ingest pipeline (bounded
	// per-pollutant queues, coalescing, block/reject overflow). The zero
	// value blocks on a full queue, 64 deep, coalescing to 4096 tuples.
	IngestQueue PipelineConfig
	// Maintenance tunes the background cover-maintenance scheduler that
	// rebuilds invalidated covers off the query path. The zero value
	// runs 2 build workers; Workers < 0 disables background builds.
	Maintenance SchedulerConfig
	// Subscriptions tunes the push-subscription registry (bounded
	// per-subscription event queues with drop-oldest + resync overflow,
	// re-evaluation workers, subscription caps).
	Subscriptions SubscriptionConfig
	// Checkpoint bounds recovery time and disk growth (used only with
	// Dir): with Interval > 0 every store periodically — and at Close —
	// persists its retained windows to a checkpoint file and deletes
	// the segment files behind it, so a restart replays only the
	// post-checkpoint suffix. KeepSegments spares the newest N covered
	// segments per compaction. The zero value takes no automatic
	// checkpoints; Platform.Checkpoint still works.
	Checkpoint CheckpointConfig
	// Columnar (used only with Dir) writes a columnar sidecar next to
	// every checkpoint and turns restart recovery of checkpointed
	// windows lazy: analytical scans — cover builds, heatmaps, window
	// reads — decode sorted, zone-mapped blocks on demand (mmap where
	// the platform supports it) instead of eagerly replaying row
	// frames. Answers are bit-identical either way; the row checkpoint
	// remains the durability source of truth and any sidecar damage
	// falls back to it per window.
	Columnar ColumnarConfig
	// Retain bounds in-memory windows (0 = keep all).
	Retain int
	// AdKMN tunes the model cover construction; the zero value uses the
	// paper's defaults (k0 = 2, τn = 2%, linear regression models).
	AdKMN AdKMNConfig
	// CoverSnapshot, when non-empty, is a file the platform loads built
	// model covers from at Open (warm restart) and saves them to at
	// Close, so a restarted server answers immediately instead of
	// re-running Ad-KMN per window. With several pollutants, each
	// persists into its own ".<pollutant>"-suffixed file.
	CoverSnapshot string
	// Cluster, when Cluster.Nodes is non-empty, makes this platform one
	// member (or, with Cluster.Router, a dedicated router) of a sharded
	// serving cluster: queries and ingest route to shard owners over
	// the wire protocol, heatmaps and model covers scatter-gather, and
	// the HTTP API gains /v1/cluster.
	Cluster ClusterConfig
}

// pollutants resolves the monitored set, preserving config order.
func (cfg Config) pollutants() []Pollutant {
	if len(cfg.Pollutants) == 0 {
		return []Pollutant{cfg.AdKMN.Pollutant}
	}
	return cfg.Pollutants
}

// storeDir returns the segment directory of one pollutant's store. An
// explicit Pollutants list — even of one — namespaces per pollutant
// (the layout OpenObservatory has always used); only the legacy
// implicit-single-pollutant config keeps the flat layout, so pre-v1
// durable directories recover unchanged.
func (cfg Config) storeDir(p Pollutant) string {
	if cfg.Dir == "" {
		return ""
	}
	if len(cfg.Pollutants) == 0 {
		return cfg.Dir // legacy flat layout
	}
	return filepath.Join(cfg.Dir, p.String())
}

// snapshotPath returns the cover-snapshot file of one pollutant,
// namespaced exactly like storeDir.
func (cfg Config) snapshotPath(p Pollutant) string {
	if cfg.CoverSnapshot == "" {
		return ""
	}
	if len(cfg.Pollutants) == 0 {
		return cfg.CoverSnapshot // legacy flat layout
	}
	return cfg.CoverSnapshot + "." + p.String()
}

// Platform is the EnviroMeter server-side platform: per-pollutant
// storage, adaptive modeling, and query processing behind one handle. It
// is safe for concurrent use.
type Platform struct {
	engine *server.Engine
	api    *server.API
	node   *cluster.Node // nil when not clustered
	// joining marks a node built from ClusterConfig.Join whose epoch
	// has not been committed yet (CompleteJoin pending).
	joining    bool
	pollutants []Pollutant
	stores     map[Pollutant]*store.Store
	snapshots  map[Pollutant]string
	// ckOnClose makes Close take a final checkpoint (set when
	// Config.Checkpoint.Interval > 0).
	ckOnClose bool
}

// Open creates a platform (recovering durable state if Config.Dir is set).
func Open(cfg Config) (*Platform, error) {
	pollutants := cfg.pollutants()
	p := &Platform{
		pollutants: pollutants,
		stores:     make(map[Pollutant]*store.Store, len(pollutants)),
		snapshots:  make(map[Pollutant]string, len(pollutants)),
	}
	closeAll := func() {
		for _, st := range p.stores {
			st.Close()
		}
	}
	for _, pol := range pollutants {
		if !pol.Valid() {
			closeAll()
			return nil, fmt.Errorf("repro: %w: %v", ErrUnknownPollutant, pol)
		}
		if _, dup := p.stores[pol]; dup {
			closeAll()
			return nil, fmt.Errorf("repro: duplicate pollutant %v", pol)
		}
		st, err := store.Open(store.Config{
			WindowLength: cfg.WindowSeconds,
			Retain:       cfg.Retain,
			Dir:          cfg.storeDir(pol),
			Sync:         cfg.Sync,
			KeepSegments: cfg.Checkpoint.KeepSegments,
			Columnar:     cfg.Columnar,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		p.stores[pol] = st
		p.snapshots[pol] = cfg.snapshotPath(pol)
	}
	adkmn := cfg.AdKMN
	adkmn.Pollutant = pollutants[0]
	p.ckOnClose = cfg.Checkpoint.Interval > 0
	engine, err := server.NewMultiEngineOpts(p.stores, adkmn, server.Options{
		Pipeline:   cfg.IngestQueue,
		Scheduler:  cfg.Maintenance,
		Checkpoint: cfg.Checkpoint,
		Subs:       cfg.Subscriptions,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	p.engine = engine
	if len(cfg.Cluster.Nodes) > 0 || cfg.Cluster.Join != "" {
		node, err := newClusterNode(cfg, engine, pollutants[0])
		if err != nil {
			engine.Close()
			closeAll()
			return nil, err
		}
		p.node = node
		p.joining = cfg.Cluster.Join != ""
		p.api = server.NewClusterAPI(engine, node)
	} else {
		p.api = server.NewAPI(engine)
	}
	for _, pol := range pollutants {
		snap := p.snapshots[pol]
		if snap == "" {
			continue
		}
		covers, err := coverio.Load(snap)
		if err != nil {
			engine.Close()
			closeAll()
			return nil, fmt.Errorf("repro: load cover snapshot for %v: %w", pol, err)
		}
		mnt, err := engine.MaintainerFor(pol)
		if err != nil {
			engine.Close()
			closeAll()
			return nil, err
		}
		mnt.Prime(covers)
	}
	// Warm-prime: whatever the snapshots did not cover — recovered
	// windows with no persisted cover, or a platform with no snapshot
	// files at all — is modeled in the background now, so a restart is
	// warm even where the snapshot is stale or absent.
	engine.WarmPrime()
	return p, nil
}

// newClusterNode derives the shard ring from the cluster configuration
// and wraps the engine in a routing node (a pure router when
// cfg.Cluster.Router). Peer links dial lazily over the binary TCP
// protocol. With Replicas > 1 the node also replicates: it streams its
// committed ingests to ring successors and holds mirrors for the
// primaries it backs, each mirror a full in-memory engine built by the
// factory below.
func newClusterNode(full Config, engine *server.Engine, def Pollutant) (*cluster.Node, error) {
	cfg := full.Cluster
	dial := func(addr string) (cluster.Transport, error) {
		return proto.Dial(addr, proto.ServerConfig{})
	}
	var (
		ring  *cluster.Ring
		self  int
		local cluster.Handler = engine
	)
	if cfg.Join != "" {
		// Join an existing cluster: announce to the seed and build this
		// node on the pending next-epoch ring it returns. Cells, vnode
		// count, and replication factor all come from the cluster; the
		// local static ring config is ignored.
		if cfg.Router {
			return nil, fmt.Errorf("repro: a dedicated router cannot join a cluster (it owns no shards); point it at the full node list instead")
		}
		if cfg.Advertise == "" {
			return nil, fmt.Errorf("repro: cluster join needs Advertise (this node's wire address as peers dial it)")
		}
		seedT, err := dial(cfg.Join)
		if err != nil {
			return nil, fmt.Errorf("repro: dial join seed %s: %w", cfg.Join, err)
		}
		pending, err := cluster.JoinCluster(seedT, cfg.Advertise)
		if err != nil {
			return nil, fmt.Errorf("repro: join via %s: %w", cfg.Join, err)
		}
		ring, self = pending, pending.Nodes()-1
	} else {
		region := cfg.Region
		if !region.Valid() || region.Area() == 0 {
			// Default: the simulated Lausanne corridor (x ∈ [-1.5, 4] km,
			// y ∈ [-0.6, 2.9] km) with margin, so the default 16 cells are
			// each ~1.5 km — several cells across the bus routes. Positions
			// outside the region still shard (nearest cell), just coarsely;
			// set Region explicitly for other deployments.
			region = Rect{Min: Point{X: -2500, Y: -1500}, Max: Point{X: 5000, Y: 4000}}
		}
		nCells := cfg.Cells
		if nCells <= 0 {
			nCells = 16
		}
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		cells, err := cluster.Cells(region, nCells, seed)
		if err != nil {
			return nil, fmt.Errorf("repro: cluster cells: %w", err)
		}
		ring, err = cluster.NewRing(cluster.Desc{Nodes: cfg.Nodes, Cells: cells, VNodes: cfg.VNodes, Replicas: cfg.Replicas})
		if err != nil {
			return nil, fmt.Errorf("repro: cluster ring: %w", err)
		}
		self = cfg.NodeID
		if cfg.Router {
			self, local = -1, nil
		} else if self < 0 || self >= len(cfg.Nodes) {
			return nil, fmt.Errorf("repro: cluster node ID %d outside %d-node cluster", self, len(cfg.Nodes))
		}
	}
	// Push streams ride a dedicated connection per routed subscription
	// leg, separate from the pooled request/response transports.
	streams := func(addr string, req wire.Message) (cluster.PushStream, error) {
		return proto.DialStream(addr, proto.ServerConfig{}, req)
	}
	nc := cluster.NodeConfig{
		Ring:       ring,
		Self:       self,
		Local:      local,
		Transports: cluster.LazyTransports(ring, self, dial),
		Dial:       dial,
		Streams:    streams,
		SubQueue:   full.Subscriptions.QueueDepth,
		Default:    def,
		Pollutants: full.pollutants(),
	}
	if self >= 0 {
		// Data nodes always carry a replication role: at R > 1 it mirrors
		// peers, and even at R = 1 the replication logs feed membership
		// handoffs (join bootstrap, drain pulls).
		nc.Replication = cluster.ReplicationConfig{NewMirror: mirrorFactory(full)}
	}
	node, err := cluster.NewNode(nc)
	if err != nil {
		return nil, fmt.Errorf("repro: cluster node: %w", err)
	}
	return node, nil
}

// mirrorFactory builds replica mirrors: each is a full in-memory engine
// with the same window length, retention, and model configuration as
// the primary it mirrors, so replaying the primary's committed ingests
// converges to byte-equal query answers. Mirrors are volatile by design
// — a restarted replica re-syncs from the primary's replication log (or
// a fresh snapshot), so persisting them would only double the disk
// writes. A factory failure yields a handler that answers every read
// with a "replica:" miss, which the failover paths treat as "no mirror
// here" and try the next replica.
func mirrorFactory(cfg Config) func() cluster.Handler {
	pollutants := cfg.pollutants()
	return func() cluster.Handler {
		stores := make(map[Pollutant]*store.Store, len(pollutants))
		fail := func(err error) cluster.Handler {
			for _, st := range stores {
				st.Close()
			}
			return mirrorError{err: err}
		}
		for _, pol := range pollutants {
			st, err := store.Open(store.Config{
				WindowLength: cfg.WindowSeconds,
				Retain:       cfg.Retain,
			})
			if err != nil {
				return fail(err)
			}
			stores[pol] = st
		}
		adkmn := cfg.AdKMN
		adkmn.Pollutant = pollutants[0]
		eng, err := server.NewMultiEngineOpts(stores, adkmn, server.Options{
			Subs: cfg.Subscriptions,
		})
		if err != nil {
			return fail(err)
		}
		return eng
	}
}

// mirrorError stands in for a mirror whose engine failed to build:
// every message answers with a "replica:"-prefixed error, which reads
// as a replica miss (not a data answer) to the failover paths.
type mirrorError struct{ err error }

func (m mirrorError) HandleMessage(wire.Message) wire.Message {
	return wire.ErrorResponse{Msg: "replica: mirror engine: " + m.err.Error()}
}

// Checkpoint persists every pollutant's retained windows to its store's
// checkpoint file, compacts the segment logs behind them, and (when
// CoverSnapshot is configured) saves the built model covers — after
// which a crash costs only a suffix replay and the covers come back
// warm. Safe to call at any time; Close takes a final checkpoint
// automatically when Config.Checkpoint.Interval is set.
func (p *Platform) Checkpoint() error {
	var errs []error
	if err := p.engine.Checkpoint(); err != nil {
		errs = append(errs, err)
	}
	for _, pol := range p.pollutants {
		snap := p.snapshots[pol]
		if snap == "" {
			continue
		}
		mnt, err := p.engine.MaintainerFor(pol)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := coverio.Save(snap, mnt.Snapshot()); err != nil {
			errs = append(errs, fmt.Errorf("repro: save %v cover snapshot: %w", pol, err))
		}
	}
	return errors.Join(errs...)
}

// CheckpointStats aggregates checkpoint, compaction, and recovery
// counters across every pollutant's store.
func (p *Platform) CheckpointStats() CheckpointStats { return p.engine.CheckpointStats() }

// ColumnarStats aggregates the columnar scan path's counters across
// every pollutant's store (zero-valued when Config.Columnar is off).
func (p *Platform) ColumnarStats() ColumnarStats { return p.engine.ColumnarStats() }

// Close shuts the write path down first — the ingest pipeline drains
// every queued upload into the (still open) stores and the maintenance
// scheduler stops — then takes a final checkpoint (if
// Config.Checkpoint.Interval is set) and persists the cover snapshots
// (if configured), and finally syncs and releases durable resources.
// All failures are reported, combined with errors.Join.
func (p *Platform) Close() error {
	var errs []error
	if p.node != nil {
		// Stop replication first: the stream workers and mirror engines
		// must quiesce before the primary engine drains.
		p.node.Close()
	}
	if err := p.engine.Close(); err != nil {
		errs = append(errs, fmt.Errorf("repro: close engine: %w", err))
	}
	if p.ckOnClose {
		// The pipeline has drained into the stores; checkpoint them now
		// so the next Open replays nothing.
		if err := p.engine.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("repro: close checkpoint: %w", err))
		}
	}
	for _, pol := range p.pollutants {
		if snap := p.snapshots[pol]; snap != "" {
			if mnt, err := p.engine.MaintainerFor(pol); err == nil {
				if err := coverio.Save(snap, mnt.Snapshot()); err != nil {
					errs = append(errs, fmt.Errorf("repro: save %v cover snapshot: %w", pol, err))
				}
			}
		}
		if err := p.stores[pol].Close(); err != nil {
			errs = append(errs, fmt.Errorf("repro: close %v store: %w", pol, err))
		}
	}
	return errors.Join(errs...)
}

// SaveCovers persists the built covers of every pollutant to the
// configured snapshot files immediately (Close also does this).
func (p *Platform) SaveCovers() error {
	var errs []error
	saved := 0
	for _, pol := range p.pollutants {
		snap := p.snapshots[pol]
		if snap == "" {
			continue
		}
		saved++
		mnt, err := p.engine.MaintainerFor(pol)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := coverio.Save(snap, mnt.Snapshot()); err != nil {
			errs = append(errs, fmt.Errorf("repro: save %v cover snapshot: %w", pol, err))
		}
	}
	if saved == 0 {
		return errors.New("repro: no CoverSnapshot configured")
	}
	return errors.Join(errs...)
}

// Pollutants lists the monitored pollutants in stable (ascending) order.
func (p *Platform) Pollutants() []Pollutant { return p.engine.Pollutants() }

// ListenTCP serves the binary wire protocol on addr — the transport
// smartphone model-cache clients use over cellular data. It returns a
// closer that stops the server and the bound address (useful with
// addr ":0").
// On a clustered platform the TCP server answers through the routing
// node (ring exchanges, forwarding, scatter-gather) instead of the bare
// engine.
func (p *Platform) ListenTCP(addr string) (io.Closer, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	var h proto.Handler = p.engine
	if p.node != nil {
		h = p.node
	}
	srv := proto.Serve(ln, h, proto.ServerConfig{})
	return srv, srv.Addr(), nil
}

// Ingest appends raw readings of pollutant pol. Late data transparently
// invalidates any already-built cover of its window. On a clustered
// platform the upload splits by shard owner: this node's slice takes
// the local (blocking, backpressured) pipeline, foreign slices forward
// over the wire to their owners.
func (p *Platform) Ingest(ctx context.Context, pol Pollutant, readings []Reading) error {
	if p.node == nil {
		return p.engine.Ingest(ctx, pol, tuple.Batch(readings))
	}
	if p.node.Ring().Replicas() > 1 {
		// Replicated ring: every slice — including this node's own —
		// must commit through the node, whose primary-side replication
		// log streams it to the shard's replicas. The engine fast path
		// below would commit invisibly to the mirrors. An empty batch is
		// a no-op here just as it is on the split path below.
		if len(readings) == 0 {
			return nil
		}
		return p.node.Ingest(ctx, pol, tuple.Batch(readings))
	}
	ring, self := p.node.Ring(), p.node.Self()
	var own, foreign tuple.Batch
	for _, r := range readings {
		if ring.Owner(pol, r.Pos()) == self {
			own = append(own, r)
		} else {
			foreign = append(foreign, r)
		}
	}
	var ownErr, foreignErr error
	if len(own) > 0 {
		ownErr = p.engine.Ingest(ctx, pol, own)
	}
	if len(foreign) > 0 {
		foreignErr = p.node.Ingest(ctx, pol, foreign)
	}
	err := errors.Join(ownErr, foreignErr)
	if err == nil {
		return nil
	}
	// If one half committed while the other failed, a blind retry would
	// duplicate the committed half: mark the combined error with the
	// cluster's non-retryable partial-ingest sentinel (unless it is
	// already in the chain from a partial foreign split).
	ownApplied := len(own) > 0 && ownErr == nil
	foreignApplied := len(foreign) > 0 && foreignErr == nil
	if (ownApplied || foreignApplied) && !errors.Is(err, cluster.ErrPartialIngest) {
		return fmt.Errorf("%w: %w", cluster.ErrPartialIngest, err)
	}
	return err
}

// Clustered reports whether the platform is a member of a sharded
// cluster.
func (p *Platform) Clustered() bool { return p.node != nil }

// CompleteJoin finishes a join started with ClusterConfig.Join: it
// bootstraps the shards this node gains from their current owners'
// replication logs, then commits the next membership epoch to every
// peer, after which the cluster routes the gained shards here. Call it
// after ListenTCP (peers dial this node the moment the commit lands).
// On error the cluster still runs at the old epoch and CompleteJoin
// may be retried.
func (p *Platform) CompleteJoin(ctx context.Context) error {
	if p.node == nil || !p.joining {
		return errors.New("repro: not joining a cluster (set ClusterConfig.Join)")
	}
	if err := p.node.CompleteJoin(ctx); err != nil {
		return fmt.Errorf("repro: complete join: %w", err)
	}
	p.joining = false
	return nil
}

// Drain removes this node from the cluster: peers pull its shards'
// retained streams, the node fences itself, and the membership commits
// at the next epoch — after which the process can exit without losing
// acked tuples (within the replication-log retention contract). The
// platform keeps serving reads during the drain; routed writes bounce
// to the new owners once the fence is up.
func (p *Platform) Drain(ctx context.Context) error {
	if p.node == nil {
		return errors.New("repro: not clustered")
	}
	if err := p.node.Drain(ctx); err != nil {
		return fmt.Errorf("repro: drain: %w", err)
	}
	return nil
}

// ClusterEpoch returns the membership epoch of the ring this node
// currently serves (0 on an unclustered platform and on clusters that
// have never had a membership transition).
func (p *Platform) ClusterEpoch() uint64 {
	if p.node == nil {
		return 0
	}
	return p.node.Ring().Epoch()
}

// Owns reports whether this node owns pollutant pol at position (x, y)
// — true on a single-node platform. Bulk loaders use it to feed each
// node only its own shards.
func (p *Platform) Owns(pol Pollutant, x, y float64) bool {
	if p.node == nil {
		return true
	}
	return p.node.Ring().Owner(pol, Point{X: x, Y: y}) == p.node.Self()
}

// ClusterStats returns the routing counters of a clustered platform
// (zero when not clustered).
func (p *Platform) ClusterStats() ClusterStats {
	if p.node == nil {
		return ClusterStats{}
	}
	return p.node.Stats()
}

// IngestReader streams a tuple CSV ("t,x,y,s" header) into the platform
// in bounded batches, so month-scale deployment files never materialize
// in memory. It returns the number of tuples ingested. Cancelling ctx
// stops the stream between batches. On a clustered platform each batch
// splits across shard owners exactly like Ingest.
func (p *Platform) IngestReader(ctx context.Context, pol Pollutant, r io.Reader) (int, error) {
	return tuple.StreamCSV(r, 0, func(b tuple.Batch) error {
		return p.Ingest(ctx, pol, b)
	})
}

// IngestStats returns the asynchronous ingest pipeline's counters:
// accepted uploads, coalesced appends, saturation rejections, queue
// depth.
func (p *Platform) IngestStats() PipelineStats { return p.engine.PipelineStats() }

// MaintenanceStats returns the background cover scheduler's counters:
// builds scheduled, completed, skipped, dropped.
func (p *Platform) MaintenanceStats() SchedulerStats { return p.engine.SchedulerStats() }

// WaitMaintenance blocks until the background cover scheduler is idle —
// every invalidated window rebuilt or discarded. Useful in tests and
// benchmarks; a disabled scheduler is always idle.
func (p *Platform) WaitMaintenance() { p.engine.Scheduler().Wait() }

// Len returns the number of retained readings across all pollutants.
func (p *Platform) Len() int {
	n := 0
	for _, st := range p.stores {
		n += st.Len()
	}
	return n
}

// LenFor returns the number of retained readings of one pollutant.
func (p *Platform) LenFor(pol Pollutant) (int, error) {
	st, err := p.engine.StoreFor(pol)
	if err != nil {
		return 0, err
	}
	return st.Len(), nil
}

// Query interpolates the requested pollutant at the request's position
// and stream time, using the model cover of the containing window (or
// the processor the options select). Deadlines and cancellation arrive
// through ctx; failures match the v1 error taxonomy with errors.Is.
// On a clustered platform requests for foreign shards forward to their
// owner; processor options other than the default model cover evaluate
// raw windows only the shard owner holds, so a foreign-shard request
// combining them fails with ErrNotRoutable rather than silently
// answering from the wrong node's data.
func (p *Platform) Query(ctx context.Context, req Request, opts ...QueryOption) (float64, error) {
	o := applyOptions(opts)
	if p.node != nil && !p.Owns(req.Pollutant, req.X, req.Y) {
		if !server.RoutableOptions(o) {
			return 0, fmt.Errorf("%w: processor=%v radius=%v", ErrNotRoutable, o.Kind, o.Radius)
		}
		return p.node.Query(ctx, req)
	}
	return p.engine.QueryOpts(ctx, req, o)
}

// QueryBatch answers a batch of requests — the registered route of a
// continuous query, or any mixed-pollutant workload — returning one
// BatchResult per request, in order. Requests execute concurrently on a
// bounded worker pool (see WithConcurrency) and each succeeds or fails
// on its own: one request outside the retained windows does not reject
// the rest. The call-level error is reserved for an empty batch and for
// ctx cancellation, which drains the pool promptly.
// On a clustered platform the batch splits across shard owners;
// non-default processor options require every request to land on this
// node's shards (ErrNotRoutable otherwise — see Query).
func (p *Platform) QueryBatch(ctx context.Context, reqs []Request, opts ...QueryOption) ([]BatchResult, error) {
	o := applyOptions(opts)
	if p.node != nil {
		if !server.RoutableOptions(o) {
			for _, req := range reqs {
				if !p.Owns(req.Pollutant, req.X, req.Y) {
					return nil, fmt.Errorf("%w: processor=%v radius=%v", ErrNotRoutable, o.Kind, o.Radius)
				}
			}
			return p.engine.QueryBatchOpts(ctx, reqs, o)
		}
		return p.node.QueryBatch(ctx, reqs)
	}
	return p.engine.QueryBatchOpts(ctx, reqs, o)
}

func applyOptions(opts []QueryOption) query.Options {
	var o query.Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Subscribe opens a push subscription over the route points pts for
// pollutant pol: the returned handle's first event is a full resync
// carrying the initial value vector, and afterwards the platform pushes
// a delta of exactly the points whose model covers an ingest
// invalidated — re-evaluated incrementally, never by polling. On a
// clustered platform the subscription is routed: each shard owner
// re-evaluates its own slice and the pushes merge onto one handle (an
// owner dying surfaces as an error event naming it). Close the handle
// to unsubscribe; a slow consumer's queue drops oldest events and the
// next event becomes a full resync, so the stream is always coherent.
func (p *Platform) Subscribe(ctx context.Context, pol Pollutant, pts []Request) (Subscription, error) {
	if p.node != nil {
		return p.node.Subscribe(ctx, pol, pts)
	}
	return p.engine.Subscribe(ctx, pol, pts)
}

// SubscriptionStats counts the push-subscription registry's work on the
// local engine (routed legs count at their owner nodes).
func (p *Platform) SubscriptionStats() SubscriptionStats {
	return p.engine.Subscriptions().Stats()
}

// Cover returns pol's model cover valid at stream time t, building it on
// first use. On a clustered platform the cover merges every node's
// region models (matching ModelResponse), so evaluating it anywhere in
// the region answers from the owning shard's models.
func (p *Platform) Cover(ctx context.Context, pol Pollutant, t float64) (*Cover, error) {
	if p.node != nil {
		mr, err := p.node.Model(ctx, pol, t)
		if err != nil && !errors.Is(err, ErrPartialResult) {
			return nil, err
		}
		cv, convErr := wire.CoverFromModelResponse(mr)
		if convErr != nil {
			return nil, convErr
		}
		// A partial answer (some dead node's shards missing, no replica
		// to stand in) returns the usable cover alongside the marker
		// error; errors.As recovers the *cluster.PartialError detail.
		return cv, err
	}
	return p.engine.CoverAt(ctx, pol, t)
}

// ModelResponse returns the wire form of pol's cover at t — what a
// model-cache client downloads once per validity window.
// On a clustered platform the response merges every node's cover.
func (p *Platform) ModelResponse(ctx context.Context, pol Pollutant, t float64) (ModelResponse, error) {
	if p.node != nil {
		return p.node.Model(ctx, pol, t)
	}
	cv, err := p.engine.CoverAt(ctx, pol, t)
	if err != nil {
		return ModelResponse{}, err
	}
	return wire.ModelResponseFromCover(cv)
}

// Heatmap rasterizes pol's cover at time t over the window's data region;
// see the heatmap endpoints of Handler for rendered output.
// On a clustered platform the raster scatter-gathers across all shards.
func (p *Platform) Heatmap(ctx context.Context, pol Pollutant, t float64, cols, rows int) (*heatmap.Grid, error) {
	if p.node != nil {
		return p.node.Heatmap(ctx, pol, t, cols, rows)
	}
	return p.engine.Heatmap(ctx, pol, t, cols, rows)
}

// Handler returns the HTTP/JSON API (point queries, batch and continuous
// queries, model downloads, heatmaps, ingestion, stats, pollutant
// discovery). Every query endpoint takes an optional ?pollutant=
// parameter.
func (p *Platform) Handler() http.Handler { return p.api }

// ClassifyCO2 returns the display band for a CO2 concentration in ppm.
func ClassifyCO2(ppm float64) CO2Band { return eval.ClassifyCO2(ppm) }

// SimulateLausanne generates the synthetic equivalent of the paper's
// lausanne-data deployment: durationSeconds of two bus lines (four
// vehicles) sampling CO2 every 60 s. The same seed always produces the
// same data.
func SimulateLausanne(seed int64, durationSeconds float64) ([]Reading, error) {
	cfg := sim.DefaultLausanne(seed)
	if durationSeconds > 0 {
		cfg.Duration = durationSeconds
	}
	b, err := sim.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return []Reading(b), nil
}

// LausanneProjection returns the projection between WGS84 and the local
// metric frame used by the simulated deployment.
func LausanneProjection() *geo.Projection { return geo.MustProjection(geo.Lausanne) }

// Model feature families, re-exported for AdKMNConfig.Features.
var (
	FeaturesConstant    = regress.Constant
	FeaturesLinearT     = regress.LinearT
	FeaturesLinearXY    = regress.LinearXY
	FeaturesLinearXYT   = regress.LinearXYT
	FeaturesQuadraticXY = regress.QuadraticXY
)
