// Package repro is EnviroMeter: a platform for querying community-sensed
// data, reproducing Sathe, Oviedo, Chakraborty and Aberer, "EnviroMeter: A
// Platform for Querying Community-Sensed Data", PVLDB 6(12), 2013.
//
// The platform ingests raw sensor tuples from a large-area community-driven
// sensor network (pollution sensors on public-transport buses), maintains
// an adaptive multi-model abstraction over each time window (the Ad-KMN
// model cover) per monitored pollutant, and answers point and continuous
// pollution queries by evaluating the nearest region model — orders of
// magnitude faster and smaller than querying indexed raw data. A
// model-cache wire protocol ships whole covers to mobile clients so they
// answer queries locally.
//
// Quick start (the v1 query API):
//
//	p, err := repro.Open(repro.Config{
//		WindowSeconds: 4 * 3600,
//		Pollutants:    []repro.Pollutant{repro.CO2, repro.CO},
//	})
//	...
//	err = p.Ingest(ctx, repro.CO2, readings)  // raw (t, x, y, s) tuples
//	v, err := p.Query(ctx, repro.Request{T: t, X: x, Y: y, Pollutant: repro.CO2})
//	rs, err := p.QueryBatch(ctx, reqs)        // many requests, one call,
//	                                          // concurrent, per-item errors
//	http.ListenAndServe(addr, p.Handler())    // the web/JSON API
//
// Failures carry a typed taxonomy — ErrNoCover, ErrOutOfWindow,
// ErrUnknownPollutant — matched with errors.Is. Query behaviour is tuned
// per call with functional options: WithRadius switches to a raw radius
// average, WithProcessor selects any of the paper's four query methods,
// and deadlines/cancellation arrive through the context.
//
// # Migrating from the v0 (untyped) API
//
// The pre-v1 facade carried a single implicit pollutant and no context:
//
//	v, err := p.PointQuery(t, x, y)           // v0
//	v, err := p.Query(ctx, repro.Request{T: t, X: x, Y: y})  // v1
//
//	vs, err := p.ContinuousQuery(qs)          // v0
//	rs, err := p.QueryBatch(ctx, reqs)        // v1: []BatchResult, one
//	                                          // value-or-error per request
//
//	err = p.Ingest(readings)                  // v0
//	err = p.Ingest(ctx, repro.CO2, readings)  // v1
//
// Request's zero Pollutant is CO2, so v0 call sites migrate mechanically.
// Cover, ModelResponse, and Heatmap likewise gained (ctx, pollutant)
// parameters.
//
// The deeper layers (spatial indexes, k-means, regression, wire codecs,
// the simulated deployment) live in internal/ packages; this package
// re-exports the surface a downstream user needs.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/coverio"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/ingest"
	"repro/internal/proto"
	"repro/internal/query"
	"repro/internal/regress"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Reading is one raw sensor tuple b = (t, x, y, s): stream time in
// seconds, local-frame position in meters, and the sensed value.
type Reading = tuple.Raw

// Pollutant identifies a sensed phenomenon (CO2, CO, PM).
type Pollutant = tuple.Pollutant

// Pollutants supported by the platform.
const (
	CO2 = tuple.CO2
	CO  = tuple.CO
	PM  = tuple.PM
)

// ParsePollutant resolves a pollutant from its abbreviation ("co2",
// "CO", "pm"), case-insensitively.
func ParsePollutant(s string) (Pollutant, error) { return tuple.ParsePollutant(s) }

// Request is one v1 query: interpolate Pollutant at (X, Y) and stream
// time T. The zero Pollutant is CO2.
type Request = query.Request

// BatchResult is one request's outcome within a QueryBatch: its value,
// or the error that request (alone) failed with.
type BatchResult = query.BatchResult

// The v1 error taxonomy, matched with errors.Is.
var (
	// ErrNoCover: the window has data but no model cover could be built.
	ErrNoCover = query.ErrNoCover
	// ErrOutOfWindow: the query time lies outside the retained data.
	ErrOutOfWindow = query.ErrOutOfWindow
	// ErrUnknownPollutant: the pollutant is invalid or not monitored.
	ErrUnknownPollutant = query.ErrUnknownPollutant
	// ErrIngestSaturated: the pollutant's ingest queue is full and the
	// overflow policy sheds load (the HTTP API's 429).
	ErrIngestSaturated = ingest.ErrSaturated
	// ErrClosed: the platform (or its engine) has been closed; the write
	// path refuses new work.
	ErrClosed = server.ErrEngineClosed
)

// SyncPolicy selects when durable appends reach stable storage; build
// one with SyncEveryBatch, SyncGrouped, or SyncNever.
type SyncPolicy = store.SyncPolicy

// SyncEveryBatch fsyncs every appended batch before acknowledging it —
// the default whenever Config.Dir is set.
func SyncEveryBatch() SyncPolicy { return store.SyncEveryBatch() }

// SyncGrouped amortizes durability: one fsync covers up to maxBatches
// appends or maxDelay of accumulation (group commit); every append is
// acknowledged only after its group's fsync. 0 picks the defaults.
func SyncGrouped(maxBatches int, maxDelay time.Duration) SyncPolicy {
	return store.SyncGrouped(maxBatches, maxDelay)
}

// SyncNever acknowledges durable appends on write and leaves flushing to
// the OS — the platform's historical (weakest, fastest) guarantee.
func SyncNever() SyncPolicy { return store.SyncNever() }

// PipelineConfig tunes the asynchronous ingest pipeline: per-pollutant
// queue depth, upload coalescing, and the overflow policy.
type PipelineConfig = ingest.PipelineConfig

// Overflow policies for PipelineConfig.
const (
	// OverflowBlock makes a full queue exert backpressure: Ingest waits
	// for space (the default).
	OverflowBlock = ingest.Block
	// OverflowReject makes a full queue shed load: Ingest fails fast
	// with ErrIngestSaturated. The HTTP ingest endpoint always sheds.
	OverflowReject = ingest.Reject
)

// SchedulerConfig tunes the background cover-maintenance scheduler.
// Workers < 0 disables it, leaving every cover build on the query path.
type SchedulerConfig = core.SchedulerConfig

// CheckpointConfig tunes durability checkpoints: Interval > 0 enables
// periodic checkpoints (and a final one at Close); KeepSegments spares
// the newest N checkpoint-covered segment files from each compaction.
type CheckpointConfig = server.CheckpointConfig

// CheckpointStats aggregates checkpoint/compaction activity and the
// last restart's recovery path across every pollutant's store.
type CheckpointStats = server.CheckpointStats

// PipelineStats counts the ingest pipeline's work.
type PipelineStats = ingest.PipelineStats

// SchedulerStats counts the cover-maintenance scheduler's work.
type SchedulerStats = core.SchedulerStats

// ProcessorKind selects the query method answering a request.
type ProcessorKind = query.Kind

// Processor kinds for WithProcessor.
const (
	ProcessorCover  = query.KindCover
	ProcessorNaive  = query.KindNaive
	ProcessorRTree  = query.KindRTree
	ProcessorVPTree = query.KindVPTree
)

// QueryOption tunes how one Query or QueryBatch call is answered.
type QueryOption func(*query.Options)

// WithRadius answers the query as an unweighted average of the raw
// tuples within r meters (the paper's naive method) instead of the model
// cover. Combine with WithProcessor to pick an indexed radius search.
func WithRadius(r float64) QueryOption {
	return func(o *query.Options) {
		o.Radius = r
		if o.Kind == "" || o.Kind == query.KindCover {
			o.Kind = query.KindNaive
		}
	}
}

// WithProcessor selects the query method: ProcessorCover (default),
// ProcessorNaive, ProcessorRTree, or ProcessorVPTree.
func WithProcessor(k ProcessorKind) QueryOption {
	return func(o *query.Options) { o.Kind = k }
}

// WithConcurrency bounds the worker pool answering a QueryBatch (0, the
// default, picks GOMAXPROCS; 1 forces sequential execution; large
// values are clamped to a small multiple of GOMAXPROCS). Single queries
// ignore it.
func WithConcurrency(n int) QueryOption {
	return func(o *query.Options) { o.Concurrency = n }
}

// Cover is a model cover: the (t_n, µ, M) triple of §2.1.
type Cover = core.Cover

// AdKMNConfig tunes the adaptive model-cover construction.
type AdKMNConfig = core.Config

// ModelResponse is the wire form of a cover, as served to model-cache
// clients.
type ModelResponse = wire.ModelResponse

// CO2Band classifies a concentration for display (OSHA-anchored).
type CO2Band = eval.CO2Band

// LatLon is a WGS84 coordinate; Point is a local metric position.
type (
	LatLon = geo.LatLon
	Point  = geo.Point
)

// Config configures a Platform.
type Config struct {
	// WindowSeconds is the modeling window length H in stream seconds.
	// Covers are rebuilt per window and expire at the window edge.
	WindowSeconds float64
	// Pollutants lists the monitored pollutants; each gets its own store
	// and model covers, and with Dir/CoverSnapshot set each persists into
	// its own subdirectory / ".<pollutant>"-suffixed file. Empty means
	// single-pollutant, monitoring AdKMN.Pollutant (CO2 by default) with
	// the flat pre-v1 durable layout.
	Pollutants []Pollutant
	// Dir, when non-empty, makes ingestion durable: appended batches are
	// persisted to checksummed segment files and recovered on reopen.
	// With several pollutants, each persists into its own subdirectory.
	Dir string
	// Sync selects when durable appends reach stable storage (used only
	// with Dir). The zero value is SyncEveryBatch(); SyncGrouped
	// amortizes fsyncs across concurrent ingests, SyncNever trades crash
	// safety for throughput.
	Sync SyncPolicy
	// IngestQueue tunes the asynchronous ingest pipeline (bounded
	// per-pollutant queues, coalescing, block/reject overflow). The zero
	// value blocks on a full queue, 64 deep, coalescing to 4096 tuples.
	IngestQueue PipelineConfig
	// Maintenance tunes the background cover-maintenance scheduler that
	// rebuilds invalidated covers off the query path. The zero value
	// runs 2 build workers; Workers < 0 disables background builds.
	Maintenance SchedulerConfig
	// Checkpoint bounds recovery time and disk growth (used only with
	// Dir): with Interval > 0 every store periodically — and at Close —
	// persists its retained windows to a checkpoint file and deletes
	// the segment files behind it, so a restart replays only the
	// post-checkpoint suffix. KeepSegments spares the newest N covered
	// segments per compaction. The zero value takes no automatic
	// checkpoints; Platform.Checkpoint still works.
	Checkpoint CheckpointConfig
	// Retain bounds in-memory windows (0 = keep all).
	Retain int
	// AdKMN tunes the model cover construction; the zero value uses the
	// paper's defaults (k0 = 2, τn = 2%, linear regression models).
	AdKMN AdKMNConfig
	// CoverSnapshot, when non-empty, is a file the platform loads built
	// model covers from at Open (warm restart) and saves them to at
	// Close, so a restarted server answers immediately instead of
	// re-running Ad-KMN per window. With several pollutants, each
	// persists into its own ".<pollutant>"-suffixed file.
	CoverSnapshot string
}

// pollutants resolves the monitored set, preserving config order.
func (cfg Config) pollutants() []Pollutant {
	if len(cfg.Pollutants) == 0 {
		return []Pollutant{cfg.AdKMN.Pollutant}
	}
	return cfg.Pollutants
}

// storeDir returns the segment directory of one pollutant's store. An
// explicit Pollutants list — even of one — namespaces per pollutant
// (the layout OpenObservatory has always used); only the legacy
// implicit-single-pollutant config keeps the flat layout, so pre-v1
// durable directories recover unchanged.
func (cfg Config) storeDir(p Pollutant) string {
	if cfg.Dir == "" {
		return ""
	}
	if len(cfg.Pollutants) == 0 {
		return cfg.Dir // legacy flat layout
	}
	return filepath.Join(cfg.Dir, p.String())
}

// snapshotPath returns the cover-snapshot file of one pollutant,
// namespaced exactly like storeDir.
func (cfg Config) snapshotPath(p Pollutant) string {
	if cfg.CoverSnapshot == "" {
		return ""
	}
	if len(cfg.Pollutants) == 0 {
		return cfg.CoverSnapshot // legacy flat layout
	}
	return cfg.CoverSnapshot + "." + p.String()
}

// Platform is the EnviroMeter server-side platform: per-pollutant
// storage, adaptive modeling, and query processing behind one handle. It
// is safe for concurrent use.
type Platform struct {
	engine     *server.Engine
	api        *server.API
	pollutants []Pollutant
	stores     map[Pollutant]*store.Store
	snapshots  map[Pollutant]string
	// ckOnClose makes Close take a final checkpoint (set when
	// Config.Checkpoint.Interval > 0).
	ckOnClose bool
}

// Open creates a platform (recovering durable state if Config.Dir is set).
func Open(cfg Config) (*Platform, error) {
	pollutants := cfg.pollutants()
	p := &Platform{
		pollutants: pollutants,
		stores:     make(map[Pollutant]*store.Store, len(pollutants)),
		snapshots:  make(map[Pollutant]string, len(pollutants)),
	}
	closeAll := func() {
		for _, st := range p.stores {
			st.Close()
		}
	}
	for _, pol := range pollutants {
		if !pol.Valid() {
			closeAll()
			return nil, fmt.Errorf("repro: %w: %v", ErrUnknownPollutant, pol)
		}
		if _, dup := p.stores[pol]; dup {
			closeAll()
			return nil, fmt.Errorf("repro: duplicate pollutant %v", pol)
		}
		st, err := store.Open(store.Config{
			WindowLength: cfg.WindowSeconds,
			Retain:       cfg.Retain,
			Dir:          cfg.storeDir(pol),
			Sync:         cfg.Sync,
			KeepSegments: cfg.Checkpoint.KeepSegments,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		p.stores[pol] = st
		p.snapshots[pol] = cfg.snapshotPath(pol)
	}
	adkmn := cfg.AdKMN
	adkmn.Pollutant = pollutants[0]
	p.ckOnClose = cfg.Checkpoint.Interval > 0
	engine, err := server.NewMultiEngineOpts(p.stores, adkmn, server.Options{
		Pipeline:   cfg.IngestQueue,
		Scheduler:  cfg.Maintenance,
		Checkpoint: cfg.Checkpoint,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	p.engine = engine
	p.api = server.NewAPI(engine)
	for _, pol := range pollutants {
		snap := p.snapshots[pol]
		if snap == "" {
			continue
		}
		covers, err := coverio.Load(snap)
		if err != nil {
			engine.Close()
			closeAll()
			return nil, fmt.Errorf("repro: load cover snapshot for %v: %w", pol, err)
		}
		mnt, err := engine.MaintainerFor(pol)
		if err != nil {
			engine.Close()
			closeAll()
			return nil, err
		}
		mnt.Prime(covers)
	}
	// Warm-prime: whatever the snapshots did not cover — recovered
	// windows with no persisted cover, or a platform with no snapshot
	// files at all — is modeled in the background now, so a restart is
	// warm even where the snapshot is stale or absent.
	engine.WarmPrime()
	return p, nil
}

// Checkpoint persists every pollutant's retained windows to its store's
// checkpoint file, compacts the segment logs behind them, and (when
// CoverSnapshot is configured) saves the built model covers — after
// which a crash costs only a suffix replay and the covers come back
// warm. Safe to call at any time; Close takes a final checkpoint
// automatically when Config.Checkpoint.Interval is set.
func (p *Platform) Checkpoint() error {
	var errs []error
	if err := p.engine.Checkpoint(); err != nil {
		errs = append(errs, err)
	}
	for _, pol := range p.pollutants {
		snap := p.snapshots[pol]
		if snap == "" {
			continue
		}
		mnt, err := p.engine.MaintainerFor(pol)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := coverio.Save(snap, mnt.Snapshot()); err != nil {
			errs = append(errs, fmt.Errorf("repro: save %v cover snapshot: %w", pol, err))
		}
	}
	return errors.Join(errs...)
}

// CheckpointStats aggregates checkpoint, compaction, and recovery
// counters across every pollutant's store.
func (p *Platform) CheckpointStats() CheckpointStats { return p.engine.CheckpointStats() }

// Close shuts the write path down first — the ingest pipeline drains
// every queued upload into the (still open) stores and the maintenance
// scheduler stops — then takes a final checkpoint (if
// Config.Checkpoint.Interval is set) and persists the cover snapshots
// (if configured), and finally syncs and releases durable resources.
// All failures are reported, combined with errors.Join.
func (p *Platform) Close() error {
	var errs []error
	if err := p.engine.Close(); err != nil {
		errs = append(errs, fmt.Errorf("repro: close engine: %w", err))
	}
	if p.ckOnClose {
		// The pipeline has drained into the stores; checkpoint them now
		// so the next Open replays nothing.
		if err := p.engine.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("repro: close checkpoint: %w", err))
		}
	}
	for _, pol := range p.pollutants {
		if snap := p.snapshots[pol]; snap != "" {
			if mnt, err := p.engine.MaintainerFor(pol); err == nil {
				if err := coverio.Save(snap, mnt.Snapshot()); err != nil {
					errs = append(errs, fmt.Errorf("repro: save %v cover snapshot: %w", pol, err))
				}
			}
		}
		if err := p.stores[pol].Close(); err != nil {
			errs = append(errs, fmt.Errorf("repro: close %v store: %w", pol, err))
		}
	}
	return errors.Join(errs...)
}

// SaveCovers persists the built covers of every pollutant to the
// configured snapshot files immediately (Close also does this).
func (p *Platform) SaveCovers() error {
	var errs []error
	saved := 0
	for _, pol := range p.pollutants {
		snap := p.snapshots[pol]
		if snap == "" {
			continue
		}
		saved++
		mnt, err := p.engine.MaintainerFor(pol)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := coverio.Save(snap, mnt.Snapshot()); err != nil {
			errs = append(errs, fmt.Errorf("repro: save %v cover snapshot: %w", pol, err))
		}
	}
	if saved == 0 {
		return errors.New("repro: no CoverSnapshot configured")
	}
	return errors.Join(errs...)
}

// Pollutants lists the monitored pollutants in stable (ascending) order.
func (p *Platform) Pollutants() []Pollutant { return p.engine.Pollutants() }

// ListenTCP serves the binary wire protocol on addr — the transport
// smartphone model-cache clients use over cellular data. It returns a
// closer that stops the server and the bound address (useful with
// addr ":0").
func (p *Platform) ListenTCP(addr string) (io.Closer, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := proto.Serve(ln, p.engine, proto.ServerConfig{})
	return srv, srv.Addr(), nil
}

// Ingest appends raw readings of pollutant pol. Late data transparently
// invalidates any already-built cover of its window.
func (p *Platform) Ingest(ctx context.Context, pol Pollutant, readings []Reading) error {
	return p.engine.Ingest(ctx, pol, tuple.Batch(readings))
}

// IngestReader streams a tuple CSV ("t,x,y,s" header) into the platform
// in bounded batches, so month-scale deployment files never materialize
// in memory. It returns the number of tuples ingested. Cancelling ctx
// stops the stream between batches.
func (p *Platform) IngestReader(ctx context.Context, pol Pollutant, r io.Reader) (int, error) {
	return tuple.StreamCSV(r, 0, func(b tuple.Batch) error {
		return p.engine.Ingest(ctx, pol, b)
	})
}

// IngestStats returns the asynchronous ingest pipeline's counters:
// accepted uploads, coalesced appends, saturation rejections, queue
// depth.
func (p *Platform) IngestStats() PipelineStats { return p.engine.PipelineStats() }

// MaintenanceStats returns the background cover scheduler's counters:
// builds scheduled, completed, skipped, dropped.
func (p *Platform) MaintenanceStats() SchedulerStats { return p.engine.SchedulerStats() }

// WaitMaintenance blocks until the background cover scheduler is idle —
// every invalidated window rebuilt or discarded. Useful in tests and
// benchmarks; a disabled scheduler is always idle.
func (p *Platform) WaitMaintenance() { p.engine.Scheduler().Wait() }

// Len returns the number of retained readings across all pollutants.
func (p *Platform) Len() int {
	n := 0
	for _, st := range p.stores {
		n += st.Len()
	}
	return n
}

// LenFor returns the number of retained readings of one pollutant.
func (p *Platform) LenFor(pol Pollutant) (int, error) {
	st, err := p.engine.StoreFor(pol)
	if err != nil {
		return 0, err
	}
	return st.Len(), nil
}

// Query interpolates the requested pollutant at the request's position
// and stream time, using the model cover of the containing window (or
// the processor the options select). Deadlines and cancellation arrive
// through ctx; failures match the v1 error taxonomy with errors.Is.
func (p *Platform) Query(ctx context.Context, req Request, opts ...QueryOption) (float64, error) {
	return p.engine.QueryOpts(ctx, req, applyOptions(opts))
}

// QueryBatch answers a batch of requests — the registered route of a
// continuous query, or any mixed-pollutant workload — returning one
// BatchResult per request, in order. Requests execute concurrently on a
// bounded worker pool (see WithConcurrency) and each succeeds or fails
// on its own: one request outside the retained windows does not reject
// the rest. The call-level error is reserved for an empty batch and for
// ctx cancellation, which drains the pool promptly.
func (p *Platform) QueryBatch(ctx context.Context, reqs []Request, opts ...QueryOption) ([]BatchResult, error) {
	return p.engine.QueryBatchOpts(ctx, reqs, applyOptions(opts))
}

func applyOptions(opts []QueryOption) query.Options {
	var o query.Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Cover returns pol's model cover valid at stream time t, building it on
// first use.
func (p *Platform) Cover(ctx context.Context, pol Pollutant, t float64) (*Cover, error) {
	return p.engine.CoverAt(ctx, pol, t)
}

// ModelResponse returns the wire form of pol's cover at t — what a
// model-cache client downloads once per validity window.
func (p *Platform) ModelResponse(ctx context.Context, pol Pollutant, t float64) (ModelResponse, error) {
	cv, err := p.engine.CoverAt(ctx, pol, t)
	if err != nil {
		return ModelResponse{}, err
	}
	return wire.ModelResponseFromCover(cv)
}

// Heatmap rasterizes pol's cover at time t over the window's data region;
// see the heatmap endpoints of Handler for rendered output.
func (p *Platform) Heatmap(ctx context.Context, pol Pollutant, t float64, cols, rows int) (*heatmap.Grid, error) {
	return p.engine.Heatmap(ctx, pol, t, cols, rows)
}

// Handler returns the HTTP/JSON API (point queries, batch and continuous
// queries, model downloads, heatmaps, ingestion, stats, pollutant
// discovery). Every query endpoint takes an optional ?pollutant=
// parameter.
func (p *Platform) Handler() http.Handler { return p.api }

// ClassifyCO2 returns the display band for a CO2 concentration in ppm.
func ClassifyCO2(ppm float64) CO2Band { return eval.ClassifyCO2(ppm) }

// SimulateLausanne generates the synthetic equivalent of the paper's
// lausanne-data deployment: durationSeconds of two bus lines (four
// vehicles) sampling CO2 every 60 s. The same seed always produces the
// same data.
func SimulateLausanne(seed int64, durationSeconds float64) ([]Reading, error) {
	cfg := sim.DefaultLausanne(seed)
	if durationSeconds > 0 {
		cfg.Duration = durationSeconds
	}
	b, err := sim.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return []Reading(b), nil
}

// LausanneProjection returns the projection between WGS84 and the local
// metric frame used by the simulated deployment.
func LausanneProjection() *geo.Projection { return geo.MustProjection(geo.Lausanne) }

// Model feature families, re-exported for AdKMNConfig.Features.
var (
	FeaturesConstant    = regress.Constant
	FeaturesLinearT     = regress.LinearT
	FeaturesLinearXY    = regress.LinearXY
	FeaturesLinearXYT   = regress.LinearXYT
	FeaturesQuadraticXY = regress.QuadraticXY
)
