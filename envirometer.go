// Package repro is EnviroMeter: a platform for querying community-sensed
// data, reproducing Sathe, Oviedo, Chakraborty and Aberer, "EnviroMeter: A
// Platform for Querying Community-Sensed Data", PVLDB 6(12), 2013.
//
// The platform ingests raw sensor tuples from a large-area community-driven
// sensor network (pollution sensors on public-transport buses), maintains
// an adaptive multi-model abstraction over each time window (the Ad-KMN
// model cover), and answers point and continuous pollution queries by
// evaluating the nearest region model — orders of magnitude faster and
// smaller than querying indexed raw data. A model-cache wire protocol ships
// whole covers to mobile clients so they answer queries locally.
//
// Quick start:
//
//	p, err := repro.Open(repro.Config{WindowSeconds: 4 * 3600})
//	...
//	err = p.Ingest(readings)                  // raw (t, x, y, s) tuples
//	v, err := p.PointQuery(t, x, y)           // interpolated concentration
//	http.ListenAndServe(addr, p.Handler())    // the web/JSON API
//
// The deeper layers (spatial indexes, k-means, regression, wire codecs,
// the simulated deployment) live in internal/ packages; this package
// re-exports the surface a downstream user needs.
package repro

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"

	"repro/internal/core"
	"repro/internal/coverio"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/proto"
	"repro/internal/query"
	"repro/internal/regress"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Reading is one raw sensor tuple b = (t, x, y, s): stream time in
// seconds, local-frame position in meters, and the sensed value.
type Reading = tuple.Raw

// Pollutant identifies a sensed phenomenon (CO2, CO, PM).
type Pollutant = tuple.Pollutant

// Pollutants supported by the platform.
const (
	CO2 = tuple.CO2
	CO  = tuple.CO
	PM  = tuple.PM
)

// Query is one query tuple q = (t, x, y) of a continuous value query.
type Query = query.Q

// Cover is a model cover: the (t_n, µ, M) triple of §2.1.
type Cover = core.Cover

// AdKMNConfig tunes the adaptive model-cover construction.
type AdKMNConfig = core.Config

// ModelResponse is the wire form of a cover, as served to model-cache
// clients.
type ModelResponse = wire.ModelResponse

// CO2Band classifies a concentration for display (OSHA-anchored).
type CO2Band = eval.CO2Band

// LatLon is a WGS84 coordinate; Point is a local metric position.
type (
	LatLon = geo.LatLon
	Point  = geo.Point
)

// Config configures a Platform.
type Config struct {
	// WindowSeconds is the modeling window length H in stream seconds.
	// Covers are rebuilt per window and expire at the window edge.
	WindowSeconds float64
	// Dir, when non-empty, makes ingestion durable: appended batches are
	// persisted to checksummed segment files and recovered on reopen.
	Dir string
	// Retain bounds in-memory windows (0 = keep all).
	Retain int
	// AdKMN tunes the model cover construction; the zero value uses the
	// paper's defaults (k0 = 2, τn = 2%, linear regression models).
	AdKMN AdKMNConfig
	// CoverSnapshot, when non-empty, is a file the platform loads built
	// model covers from at Open (warm restart) and saves them to at
	// Close, so a restarted server answers immediately instead of
	// re-running Ad-KMN per window.
	CoverSnapshot string
}

// Platform is the EnviroMeter server-side platform: storage, adaptive
// modeling, and query processing behind one handle. It is safe for
// concurrent use.
type Platform struct {
	st       *store.Store
	engine   *server.Engine
	api      *server.API
	snapshot string
}

// Open creates a platform (recovering durable state if Config.Dir is set).
func Open(cfg Config) (*Platform, error) {
	st, err := store.Open(store.Config{
		WindowLength: cfg.WindowSeconds,
		Retain:       cfg.Retain,
		Dir:          cfg.Dir,
	})
	if err != nil {
		return nil, err
	}
	engine := server.NewEngine(st, cfg.AdKMN)
	p := &Platform{
		st:       st,
		engine:   engine,
		api:      server.NewAPI(engine),
		snapshot: cfg.CoverSnapshot,
	}
	if cfg.CoverSnapshot != "" {
		covers, err := coverio.Load(cfg.CoverSnapshot)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("repro: load cover snapshot: %w", err)
		}
		engine.Maintainer().Prime(covers)
	}
	return p, nil
}

// Close persists the cover snapshot (if configured), then syncs and
// releases durable resources.
func (p *Platform) Close() error {
	var snapErr error
	if p.snapshot != "" {
		snapErr = coverio.Save(p.snapshot, p.engine.Maintainer().Snapshot())
	}
	if err := p.st.Close(); err != nil {
		return err
	}
	return snapErr
}

// SaveCovers persists the built covers to the configured snapshot file
// immediately (Close also does this).
func (p *Platform) SaveCovers() error {
	if p.snapshot == "" {
		return errors.New("repro: no CoverSnapshot configured")
	}
	return coverio.Save(p.snapshot, p.engine.Maintainer().Snapshot())
}

// ListenTCP serves the binary wire protocol on addr — the transport
// smartphone model-cache clients use over cellular data. It returns a
// closer that stops the server and the bound address (useful with
// addr ":0").
func (p *Platform) ListenTCP(addr string) (io.Closer, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := proto.Serve(ln, p.engine, proto.ServerConfig{})
	return srv, srv.Addr(), nil
}

// Ingest appends raw readings to the platform. Late data transparently
// invalidates any already-built cover of its window.
func (p *Platform) Ingest(readings []Reading) error {
	return p.engine.Ingest(tuple.Batch(readings))
}

// Len returns the number of retained readings.
func (p *Platform) Len() int { return p.st.Len() }

// PointQuery interpolates the sensed value at position (x, y) and stream
// time t using the model cover of t's window.
func (p *Platform) PointQuery(t, x, y float64) (float64, error) {
	return p.engine.PointQuery(t, x, y)
}

// ContinuousQuery answers a registered route of query tuples, returning
// one interpolated value per tuple (Query 1 of the paper).
func (p *Platform) ContinuousQuery(qs []Query) ([]float64, error) {
	if len(qs) == 0 {
		return nil, errors.New("repro: empty continuous query")
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := p.engine.PointQuery(q.T, q.X, q.Y)
		if err != nil {
			return nil, fmt.Errorf("repro: query %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// Cover returns the model cover valid at stream time t, building it on
// first use.
func (p *Platform) Cover(t float64) (*Cover, error) {
	return p.engine.CoverAt(t)
}

// ModelResponse returns the wire form of the cover at t — what a
// model-cache client downloads once per validity window.
func (p *Platform) ModelResponse(t float64) (ModelResponse, error) {
	cv, err := p.engine.CoverAt(t)
	if err != nil {
		return ModelResponse{}, err
	}
	return wire.ModelResponseFromCover(cv)
}

// Heatmap rasterizes the cover at time t over the window's data region;
// see the heatmap endpoints of Handler for rendered output.
func (p *Platform) Heatmap(t float64, cols, rows int) (*heatmap.Grid, error) {
	return p.engine.Heatmap(t, cols, rows)
}

// Handler returns the HTTP/JSON API (point queries, continuous queries,
// model downloads, heatmaps, ingestion, stats).
func (p *Platform) Handler() http.Handler { return p.api }

// ClassifyCO2 returns the display band for a CO2 concentration in ppm.
func ClassifyCO2(ppm float64) CO2Band { return eval.ClassifyCO2(ppm) }

// SimulateLausanne generates the synthetic equivalent of the paper's
// lausanne-data deployment: durationSeconds of two bus lines (four
// vehicles) sampling CO2 every 60 s. The same seed always produces the
// same data.
func SimulateLausanne(seed int64, durationSeconds float64) ([]Reading, error) {
	cfg := sim.DefaultLausanne(seed)
	if durationSeconds > 0 {
		cfg.Duration = durationSeconds
	}
	b, err := sim.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return []Reading(b), nil
}

// LausanneProjection returns the projection between WGS84 and the local
// metric frame used by the simulated deployment.
func LausanneProjection() *geo.Projection { return geo.MustProjection(geo.Lausanne) }

// Model feature families, re-exported for AdKMNConfig.Features.
var (
	FeaturesConstant    = regress.Constant
	FeaturesLinearT     = regress.LinearT
	FeaturesLinearXY    = regress.LinearXY
	FeaturesLinearXYT   = regress.LinearXYT
	FeaturesQuadraticXY = regress.QuadraticXY
)
