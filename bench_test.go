package repro

// One testing.B benchmark per figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Non-timing quantities (NRMSE,
// retained bytes, bandwidth ratios) are emitted with b.ReportMetric so
// `go test -bench` regenerates every number the paper plots.

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/store"
	"repro/internal/tuple"
)

// benchDataset caches the synthetic deployment across benchmarks.
var benchDataset *bench.Dataset

func loadBenchDataset(b *testing.B) *bench.Dataset {
	b.Helper()
	if benchDataset == nil {
		d, err := bench.LoadDataset(1, 4*86400)
		if err != nil {
			b.Fatal(err)
		}
		benchDataset = d
	}
	return benchDataset
}

// BenchmarkFig6aEfficiency times one point query per method per window
// size — the quantity Figure 6(a) plots (there as 5000-query batches).
func BenchmarkFig6aEfficiency(b *testing.B) {
	d := loadBenchDataset(b)
	for _, h := range []int{40, 240} {
		w, err := d.WindowOfSize(len(d.Data)/3, h)
		if err != nil {
			b.Fatal(err)
		}
		wl, err := d.MakeWorkload(w, 1024, 150, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range bench.AllMethods {
			p, err := bench.BuildProcessor(m, w, 1000, 0.02, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(string(m)+"/H="+itoa(h), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := wl.Queries[i%len(wl.Queries)]
					if _, err := p.Interpolate(q); err != nil {
						// Queries with no data in radius are part of the
						// workload; they cost a full scan too.
						continue
					}
				}
			})
		}
	}
}

// BenchmarkFig6bAccuracy reports NRMSE per method per window size — the
// series of Figure 6(b).
func BenchmarkFig6bAccuracy(b *testing.B) {
	d := loadBenchDataset(b)
	cfg := bench.DefaultFig6Config()
	cfg.NumQueries = 2000
	cfg.WindowSizes = []int{40, 240}
	rows, err := bench.RunFig6(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		for _, m := range []bench.Method{bench.MethodAdKMN, bench.MethodNaive} {
			m := m
			b.Run(string(m)+"/H="+itoa(row.H), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = row // the measurement is precomputed; report it
				}
				b.ReportMetric(row.NRMSE[m], "NRMSE-%")
			})
		}
	}
}

// BenchmarkFig7aMemory reports the retained bytes per method at H=5000 —
// Figure 7(a).
func BenchmarkFig7aMemory(b *testing.B) {
	d := loadBenchDataset(b)
	cfg := bench.DefaultFig7aConfig()
	cfg.Runs = 3
	res, err := bench.RunFig7a(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []bench.Method{bench.MethodAdKMN, bench.MethodNaive, bench.MethodRTree, bench.MethodVPTree} {
		m := m
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = res
			}
			b.ReportMetric(res.Bytes[m]/1024, "KB")
			b.ReportMetric(res.Ratio(m), "x-vs-adkmn")
		})
	}
}

// BenchmarkFig7bBandwidth reports the bandwidth experiment's three ratios
// — Figure 7(b).
func BenchmarkFig7bBandwidth(b *testing.B) {
	d := loadBenchDataset(b)
	var res *bench.Fig7bResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunFig7b(d, bench.DefaultFig7bConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SentRatio(), "sent-ratio")
	b.ReportMetric(res.ReceivedRatio(), "recv-ratio")
	b.ReportMetric(res.TimeRatio(), "time-ratio")
}

// BenchmarkAblationFixedK compares Ad-KMN against the fixed-k and grid
// covers (DESIGN.md ablations 1 and 2).
func BenchmarkAblationFixedK(b *testing.B) {
	d := loadBenchDataset(b)
	var rows []bench.AblationCoverRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunAblationCovers(d, 2000, 500, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Strategy == "ad-kmn" || r.Strategy == "fixed-k8" || r.Strategy == "grid-6x6" {
			b.ReportMetric(r.NRMSE, r.Strategy+"-NRMSE-%")
		}
	}
}

// BenchmarkAblationModelFamily reports accuracy and payload per model
// family (DESIGN.md ablation 3).
func BenchmarkAblationModelFamily(b *testing.B) {
	d := loadBenchDataset(b)
	var rows []bench.AblationModelRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunAblationModelFamily(d, 2000, 500, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NRMSE, r.Family+"-NRMSE-%")
	}
}

// BenchmarkAblationCodec reports model-payload sizes per codec (DESIGN.md
// ablation 4).
func BenchmarkAblationCodec(b *testing.B) {
	d := loadBenchDataset(b)
	var rows []bench.AblationCodecRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunAblationCodec(d, 2000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.ModelRespByte), r.Codec+"-model-bytes")
	}
}

// BenchmarkAblationIndexTuning sweeps R-tree fan-out (DESIGN.md ablation
// 5), verifying the Figure 6(a) baselines are competently tuned.
func BenchmarkAblationIndexTuning(b *testing.B) {
	d := loadBenchDataset(b)
	var rows []bench.AblationIndexRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunAblationIndexTuning(d, 2000, 300, 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := r.Index
		if r.Param > 0 {
			name += "-M" + itoa(r.Param)
		}
		b.ReportMetric(r.Elapsed.Seconds()*1000, name+"-ms")
	}
}

// BenchmarkQueryBatchConcurrency measures batch execution on a batch
// spanning several modeling windows: the sequential baseline
// (WithConcurrency(1)) against the bounded worker pool. The naive
// processor pays a window scan per request, so the pool's speedup is the
// headline; the cover processor shows the (smaller) win on the
// recommended path once covers are warm.
func BenchmarkQueryBatchConcurrency(b *testing.B) {
	p, err := Open(Config{WindowSeconds: 3600})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	readings, err := SimulateLausanne(3, 6*3600) // six windows of data
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Ingest(ctx, CO2, readings); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	reqs := make([]Request, 2048)
	for i := range reqs {
		reqs[i] = Request{
			T: rng.Float64() * 6 * 3600,
			X: rng.Float64() * 2000,
			Y: rng.Float64() * 2000,
		}
	}
	for _, kind := range []ProcessorKind{ProcessorNaive, ProcessorCover} {
		// Warm covers and processor caches once, so every concurrency
		// level measures steady-state batch execution, not cold builds.
		if _, err := p.QueryBatch(ctx, reqs, WithProcessor(kind)); err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(string(kind)+"/workers="+itoa(workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rs, err := p.QueryBatch(ctx, reqs, WithProcessor(kind), WithConcurrency(workers))
					if err != nil {
						b.Fatal(err)
					}
					_ = rs
				}
			})
		}
	}
}

// BenchmarkIngestThroughput measures durable append throughput under the
// three sync policies with concurrent appenders: SyncEveryBatch pays one
// fsync per batch, SyncGrouped shares one fsync per commit group (the
// ISSUE 3 headline), SyncNever is the no-durability ceiling. The
// syncs-per-append ratio is reported alongside the timing.
func BenchmarkIngestThroughput(b *testing.B) {
	policies := []struct {
		name   string
		policy store.SyncPolicy
	}{
		{"SyncEveryBatch", store.SyncEveryBatch()},
		{"SyncGrouped", store.SyncGrouped(32, 2*time.Millisecond)},
		{"SyncNever", store.SyncNever()},
	}
	const batchSize = 32
	for _, pc := range policies {
		pc := pc
		b.Run(pc.name, func(b *testing.B) {
			st, err := store.Open(store.Config{
				WindowLength: 3600,
				Retain:       4, // bound memory under long -benchtime runs
				Dir:          b.TempDir(),
				Sync:         pc.policy,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var windowSeq atomic.Int64
			b.SetParallelism(8) // grouped commit needs company to group
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					c := windowSeq.Add(1) % 4
					batch := make(tuple.Batch, batchSize)
					for i := range batch {
						batch[i] = tuple.Raw{
							T: float64(c)*3600 + float64(i),
							X: float64(i), Y: 1, S: 420,
						}
					}
					if err := st.Append(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			ds := st.DurabilityStats()
			if ds.Appends > 0 {
				b.ReportMetric(float64(ds.Syncs)/float64(ds.Appends), "syncs/append")
			}
			b.SetBytes(int64(batchSize * 33)) // approx frame payload
		})
	}
}

// BenchmarkQueryAfterIngest measures the cold-cover query latency the
// scheduler removes from the query path: each iteration invalidates the
// window's cover (as late-arriving ingest would), then queries. With the
// scheduler, the rebuild happens in the background before the query;
// without it (Workers: -1), the query pays the full Ad-KMN build.
func BenchmarkQueryAfterIngest(b *testing.B) {
	modes := []struct {
		name    string
		workers int
	}{
		{"scheduler", 0},
		{"noscheduler", -1},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			p, err := Open(Config{
				WindowSeconds: 3600,
				Maintenance:   SchedulerConfig{Workers: mode.workers},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			readings, err := SimulateLausanne(5, 3600)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if err := p.Ingest(ctx, CO2, readings); err != nil {
				b.Fatal(err)
			}
			req := Request{T: 1800, X: 1200, Y: 800}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p.engine.Maintainer().Invalidate(0) // late data arrived
				p.WaitMaintenance()                 // no-op without the scheduler
				b.StartTimer()
				if _, err := p.Query(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// itoa avoids importing strconv into the benchmark file repeatedly.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
