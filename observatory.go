package repro

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/eval"
	"repro/internal/sim"
)

// Observatory is the pre-v1 multi-pollutant facade, kept as a thin
// wrapper now that Platform itself monitors several pollutants (§2.2:
// CO2, CO, suspended particulate matter). New code should open a
// Platform with Config.Pollutants and use the v1 Query API directly;
// Observatory remains for callers of the pollutant-first convenience
// methods and the per-pollutant URL routing.
type Observatory struct {
	p *Platform
}

// OpenObservatory opens one multi-pollutant platform with the shared
// configuration. With Config.Dir set, each pollutant persists into its
// own subdirectory; with CoverSnapshot set, into per-pollutant files.
func OpenObservatory(cfg Config, pollutants []Pollutant) (*Observatory, error) {
	if len(pollutants) == 0 {
		return nil, errors.New("repro: no pollutants")
	}
	cfg.Pollutants = pollutants
	p, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	return &Observatory{p: p}, nil
}

// Close closes the underlying platform.
func (o *Observatory) Close() error { return o.p.Close() }

// Pollutants lists the monitored pollutants in stable order.
func (o *Observatory) Pollutants() []Pollutant { return o.p.Pollutants() }

// Platform returns the underlying multi-pollutant platform. Unlike the
// pre-v1 Observatory there is no per-pollutant Platform anymore: name
// the pollutant in each Request against the returned handle.
func (o *Observatory) Platform() *Platform { return o.p }

// Ingest appends readings for one pollutant; an unmonitored pollutant
// fails with ErrUnknownPollutant from the engine.
func (o *Observatory) Ingest(p Pollutant, readings []Reading) error {
	return o.p.Ingest(context.Background(), p, readings)
}

// PointQuery interpolates one pollutant at a position and time.
func (o *Observatory) PointQuery(p Pollutant, t, x, y float64) (float64, error) {
	return o.p.Query(context.Background(), Request{T: t, X: x, Y: y, Pollutant: p})
}

// Classify returns the display band for a value of pollutant p.
func (o *Observatory) Classify(p Pollutant, value float64) CO2Band {
	return eval.ClassifyPollutant(p, value)
}

// Handler routes per-pollutant APIs under /<pollutant>/v1/... (e.g.
// GET /CO2/v1/query/point) by injecting the pollutant into the v1
// handler's ?pollutant= parameter, and lists the monitored pollutants at
// /v1/pollutants.
func (o *Observatory) Handler() http.Handler {
	mux := http.NewServeMux()
	base := o.p.Handler()
	for _, pol := range o.p.Pollutants() {
		prefix := "/" + pol.String()
		mux.Handle(prefix+"/", http.StripPrefix(prefix, withPollutant(pol, base)))
	}
	mux.Handle("/v1/pollutants", base)
	return mux
}

// withPollutant rewrites each request's query string to name pol, so the
// prefix routing of the legacy Observatory URLs maps onto the v1
// pollutant parameter.
func withPollutant(pol Pollutant, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		q := r2.URL.Query()
		q.Set("pollutant", pol.String())
		r2.URL.RawQuery = q.Encode()
		h.ServeHTTP(w, r2)
	})
}

// SimulateLausanneMulti generates the synthetic deployment for several
// pollutants at once: shared bus trajectories, per-pollutant fields and
// sensor noise.
func SimulateLausanneMulti(seed int64, durationSeconds float64, pollutants []Pollutant) (map[Pollutant][]Reading, error) {
	cfg := sim.DefaultLausanne(seed)
	if durationSeconds > 0 {
		cfg.Duration = durationSeconds
	}
	batches, err := sim.GenerateMulti(cfg, pollutants)
	if err != nil {
		return nil, err
	}
	out := make(map[Pollutant][]Reading, len(batches))
	for p, b := range batches {
		out[p] = []Reading(b)
	}
	return out, nil
}

// ClassifyPollutant returns the display band for a value of any monitored
// pollutant (package-level convenience mirroring ClassifyCO2).
func ClassifyPollutant(p Pollutant, value float64) CO2Band {
	return eval.ClassifyPollutant(p, value)
}
