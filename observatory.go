package repro

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"

	"repro/internal/eval"
	"repro/internal/sim"
)

// Observatory manages one Platform per pollutant over a shared fleet —
// the multi-gas sensor boxes of the OpenSense buses (§2.2: CO2, CO,
// suspended particulate matter). Each pollutant gets its own store and
// model covers; queries name the pollutant.
type Observatory struct {
	platforms map[Pollutant]*Platform
}

// OpenObservatory opens one platform per pollutant with the shared
// configuration. With Config.Dir set, each pollutant persists into its
// own subdirectory; with CoverSnapshot set, into per-pollutant files.
func OpenObservatory(cfg Config, pollutants []Pollutant) (*Observatory, error) {
	if len(pollutants) == 0 {
		return nil, errors.New("repro: no pollutants")
	}
	o := &Observatory{platforms: make(map[Pollutant]*Platform, len(pollutants))}
	for _, pol := range pollutants {
		if !pol.Valid() {
			o.Close()
			return nil, fmt.Errorf("repro: invalid pollutant %v", pol)
		}
		if _, dup := o.platforms[pol]; dup {
			o.Close()
			return nil, fmt.Errorf("repro: duplicate pollutant %v", pol)
		}
		sub := cfg
		if cfg.Dir != "" {
			sub.Dir = filepath.Join(cfg.Dir, pol.String())
		}
		if cfg.CoverSnapshot != "" {
			sub.CoverSnapshot = cfg.CoverSnapshot + "." + pol.String()
		}
		sub.AdKMN.Pollutant = pol
		p, err := Open(sub)
		if err != nil {
			o.Close()
			return nil, fmt.Errorf("repro: open %v platform: %w", pol, err)
		}
		o.platforms[pol] = p
	}
	return o, nil
}

// Close closes every platform, returning the first error.
func (o *Observatory) Close() error {
	var first error
	for _, p := range o.platforms {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Pollutants lists the monitored pollutants in stable order.
func (o *Observatory) Pollutants() []Pollutant {
	out := make([]Pollutant, 0, len(o.platforms))
	for p := range o.platforms {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Platform returns the per-pollutant platform.
func (o *Observatory) Platform(p Pollutant) (*Platform, error) {
	pl, ok := o.platforms[p]
	if !ok {
		return nil, fmt.Errorf("repro: pollutant %v not monitored", p)
	}
	return pl, nil
}

// Ingest appends readings for one pollutant.
func (o *Observatory) Ingest(p Pollutant, readings []Reading) error {
	pl, err := o.Platform(p)
	if err != nil {
		return err
	}
	return pl.Ingest(readings)
}

// PointQuery interpolates one pollutant at a position and time.
func (o *Observatory) PointQuery(p Pollutant, t, x, y float64) (float64, error) {
	pl, err := o.Platform(p)
	if err != nil {
		return 0, err
	}
	return pl.PointQuery(t, x, y)
}

// Classify returns the display band for a value of pollutant p.
func (o *Observatory) Classify(p Pollutant, value float64) CO2Band {
	return eval.ClassifyPollutant(p, value)
}

// Handler routes per-pollutant APIs under /<pollutant>/v1/... (e.g.
// GET /CO2/v1/query/point) and lists the monitored pollutants at
// /v1/pollutants.
func (o *Observatory) Handler() http.Handler {
	mux := http.NewServeMux()
	for pol, p := range o.platforms {
		prefix := "/" + pol.String()
		mux.Handle(prefix+"/", http.StripPrefix(prefix, p.Handler()))
	}
	mux.HandleFunc("/v1/pollutants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		names := make([]string, 0, len(o.platforms))
		for _, p := range o.Pollutants() {
			names = append(names, p.String())
		}
		fmt.Fprintf(w, `{"pollutants":[`)
		for i, n := range names {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%q", n)
		}
		fmt.Fprint(w, "]}\n")
	})
	return mux
}

// SimulateLausanneMulti generates the synthetic deployment for several
// pollutants at once: shared bus trajectories, per-pollutant fields and
// sensor noise.
func SimulateLausanneMulti(seed int64, durationSeconds float64, pollutants []Pollutant) (map[Pollutant][]Reading, error) {
	cfg := sim.DefaultLausanne(seed)
	if durationSeconds > 0 {
		cfg.Duration = durationSeconds
	}
	batches, err := sim.GenerateMulti(cfg, pollutants)
	if err != nil {
		return nil, err
	}
	out := make(map[Pollutant][]Reading, len(batches))
	for p, b := range batches {
		out[p] = []Reading(b)
	}
	return out, nil
}

// ClassifyPollutant returns the display band for a value of any monitored
// pollutant (package-level convenience mirroring ClassifyCO2).
func ClassifyPollutant(p Pollutant, value float64) CO2Band {
	return eval.ClassifyPollutant(p, value)
}
